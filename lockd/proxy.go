package lockd

// Proxy-mode forwarding: the server side of cutting a cross-node
// acquire to one client-visible round trip. A clustered node with
// Proxy set, on receiving an acquire-type op for a key it does not
// own, forwards the op to the owner over a persistent inter-node
// connection — one pooled socket per peer, one logical stream per
// forwarded client session, ops batched per frame with the same
// last-writer-flushes discipline as the client mux — and relays the
// owner's answer, stamped with an owner hint so routing clients
// converge to direct routing. Without Proxy the node answers
// wrong_owner exactly as before.
//
// The safety properties forwarding must not disturb:
//
//   - Fencing tokens stay owner-drawn. A forwarded acquire executes at
//     the owner under its commitAcquire — ownership re-check, token
//     floor, attach, all under the owner's handoffMu. The proxy holds
//     the grant only by proxy: in a session keyed to the forwarded
//     stream, released when the stream (or its socket) dies, exactly
//     as a directly connected client's grants are.
//
//   - Forwarding cannot loop. Inter-node connections lead with
//     BinaryMagicProxy, which marks every session on them noForward: a
//     node receiving a forwarded op for a key it believes belongs to
//     yet another node answers wrong_owner instead of forwarding
//     again, and the first proxy relays that redirect to the client.
//     Two nodes with divergent membership views therefore degrade to
//     the pre-proxy redirect dance after exactly one wasted hop; they
//     can never forward in a cycle.
//
//   - A dead proxy looks like a dead client. The owner's grants for a
//     forwarded stream die with the inter-node socket (connection
//     teardown → lease TTL as usual), so a proxy crash orphans
//     nothing beyond what a client crash already would.
//
// Forwarded release is fire-and-forget: the proxy deletes its record,
// answers the client OK, and lets the release ride the stream's FIFO.
// This halves the proxied release's cost (no owner round trip on the
// client's critical path) and is safe — the release is ordered before
// any later op on the stream, a lost stream releases by socket
// teardown, and the only observable difference is that a release
// racing lease expiry reports OK instead of Fenced, which changes
// nothing about who may hold the lock. Named heartbeat and holds stay
// synchronous: their answers (TTL, fenced) are only worth relaying if
// they are the owner's truth.
//
// Fire-and-forget ops do not even pay their own inter-node write: they
// go out as OpReleaseNoAck — which the owner performs without
// answering — parked in the socket's pending buffer to ride ahead of
// the next frame anyone sends on it. An acquire/release cycle through
// a proxy therefore costs one inter-node round trip total: the release
// travels with the next acquire's frame, and the owner answers with
// exactly one response frame (the acquire's). A timer bounds the
// parking (deferredFlushDelay) so a session that goes quiet after a
// release still releases at the owner within a millisecond, not at
// lease expiry. Cancels are never parked: they chase a blocked
// acquire, so they take the immediate path.

import (
	"bufio"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"
)

// proxyDialTimeout bounds one inter-node dial; a peer that cannot be
// reached within it degrades that op to a redirect.
const proxyDialTimeout = 2 * time.Second

// deferredFlushDelay bounds how long a fire-and-forget op may wait in
// the pending buffer for a frame to piggyback on before the flush
// timer pushes it out on its own — the worst-case extra latency before
// a proxied release is visible at the owner when its session goes
// quiet.
const deferredFlushDelay = time.Millisecond

// errPeerPoolClosed fails forwards attempted after Shutdown/Kill began.
var errPeerPoolClosed = errors.New("lockd: proxy peer pool closed")

// fwdResult is one forwarded op's outcome: the owner's response, or the
// transport error that lost it.
type fwdResult struct {
	resp Response
	err  error
}

// peerPool owns this node's inter-node sockets, one peer per owner
// address, dialed lazily and redialed on failure.
type peerPool struct {
	maxFrame int

	mu     sync.Mutex
	peers  map[string]*peer
	closed bool
}

func newPeerPool(maxFrame int) *peerPool {
	if maxFrame <= 0 {
		maxFrame = DefaultMaxFrameBytes
	}
	return &peerPool{maxFrame: maxFrame, peers: make(map[string]*peer)}
}

// openStream opens a fresh forwarded stream to the node at addr,
// dialing or redialing the pooled socket as needed.
func (pp *peerPool) openStream(addr string) (*peerStream, error) {
	pp.mu.Lock()
	if pp.closed {
		pp.mu.Unlock()
		return nil, errPeerPoolClosed
	}
	p := pp.peers[addr]
	if p == nil {
		p = &peer{addr: addr, maxFrame: pp.maxFrame}
		pp.peers[addr] = p
	}
	pp.mu.Unlock()
	return p.open()
}

// Close fails every live forwarded stream and refuses new ones.
func (pp *peerPool) Close() {
	pp.mu.Lock()
	pp.closed = true
	peers := pp.peers
	pp.peers = nil
	pp.mu.Unlock()
	for _, p := range peers {
		p.close()
	}
}

// peer is one owner address's slot in the pool: at most one live socket
// (a peerConn generation), replaced wholesale when it breaks.
type peer struct {
	addr     string
	maxFrame int

	mu sync.Mutex // serializes (re)dials
	pc *peerConn  // current socket generation; nil before the first dial
}

func (p *peer) open() (*peerStream, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.pc != nil {
		if st, err := p.pc.openStream(); err == nil {
			return st, nil
		}
		// The generation is dead (sticky error); replace it.
		p.pc.conn.Close()
		p.pc = nil
	}
	conn, err := net.DialTimeout("tcp", p.addr, proxyDialTimeout)
	if err != nil {
		return nil, err
	}
	pc := newPeerConn(conn, p.maxFrame)
	if _, err := conn.Write(BinaryMagicProxy[:]); err != nil {
		conn.Close()
		return nil, err
	}
	p.pc = pc
	return pc.openStream()
}

func (p *peer) close() {
	p.mu.Lock()
	pc := p.pc
	p.pc = nil
	p.mu.Unlock()
	if pc != nil {
		pc.fail(errPeerPoolClosed)
	}
}

// peerConn is one socket generation to a peer, multiplexing forwarded
// streams with the same shape as the client mux: registration and the
// frame write happen under sendMu so the per-stream FIFO matches the
// write order, and a writer flushes only when no other writer is
// already waiting — the last one out pays the syscall.
//
// There is no standing read goroutine. Reading is demand-driven: a
// goroutine waiting for a response elects itself the connection's
// reader (readerOn), reads and demultiplexes frames — delivering other
// streams' responses along the way — until its own arrives, then steps
// down, closing readerGone so any waiter parked behind it can re-run
// the election and drain what remains. This keeps the response's
// delivery on the waiting goroutine itself: one netpoller wakeup
// instead of a reader wakeup plus a channel handoff, which is most of
// what an inter-node hop costs on a fast network. Responses nobody is
// waiting for (a posted cancel's ack) just sit in the socket buffer
// until the next waiter reads past them.
type peerConn struct {
	conn     net.Conn
	maxFrame int

	waiters atomic.Int32
	sendMu  sync.Mutex
	bw      *bufio.Writer
	wbuf    []byte
	// pending holds complete frames of fire-and-forget ops waiting to
	// piggyback on the next frame written; flushTimer pushes them out on
	// its own after deferredFlushDelay if nothing comes along. All
	// guarded by sendMu.
	pending    []byte
	flushTimer *time.Timer
	timerArmed bool

	// br and rbuf are owned by whichever goroutine currently holds the
	// readership; the readerOn transitions under mu order the handoffs.
	br   *bufio.Reader
	rbuf []byte

	mu         sync.Mutex
	streams    map[uint32]*peerStream
	nextID     uint32
	err        error // sticky: set once the socket is lost, fails all opens
	readerOn   bool
	readerGone chan struct{} // created by the first parked waiter; closed at stepdown
}

func newPeerConn(conn net.Conn, maxFrame int) *peerConn {
	return &peerConn{
		conn:     conn,
		maxFrame: maxFrame,
		bw:       bufio.NewWriter(conn),
		br:       bufio.NewReader(conn),
		streams:  make(map[uint32]*peerStream),
	}
}

func (pc *peerConn) openStream() (*peerStream, error) {
	pc.mu.Lock()
	defer pc.mu.Unlock()
	if pc.err != nil {
		return nil, pc.err
	}
	pc.nextID++
	st := &peerStream{pc: pc, id: pc.nextID}
	pc.streams[st.id] = st
	return st, nil
}

// forget drops a retired stream id so the map doesn't accumulate ended
// streams. Only called after the stream's last response arrived.
func (pc *peerConn) forget(id uint32) {
	pc.mu.Lock()
	delete(pc.streams, id)
	pc.mu.Unlock()
}

// send encodes req as one frame on st and registers ch to receive the
// matching response. ch must be buffered: a reader never blocks on
// a receiver. An error means nothing was sent and ch will not fire.
func (pc *peerConn) send(st *peerStream, req *Request, ch chan fwdResult) error {
	pc.waiters.Add(1)
	pc.sendMu.Lock()
	pc.waiters.Add(-1)
	pc.wbuf = BeginFrame(pc.wbuf[:0], st.id)
	var err error
	if pc.wbuf, err = AppendRequestBin(pc.wbuf, req); err != nil {
		pc.sendMu.Unlock()
		return err
	}
	pc.wbuf = EndFrame(pc.wbuf, 0)
	st.mu.Lock()
	if st.broken != nil {
		err = st.broken
		st.mu.Unlock()
		pc.sendMu.Unlock()
		return err
	}
	st.queue = append(st.queue, ch)
	st.mu.Unlock()
	werr := pc.writeLocked(pc.wbuf)
	if werr == nil && pc.waiters.Load() == 0 {
		werr = pc.bw.Flush()
	}
	pc.sendMu.Unlock()
	if werr != nil {
		// The registered ch hears the failure through fail, like every
		// other in-flight op on the generation.
		pc.fail(fmt.Errorf("lockd: proxy peer write: %w", werr))
	}
	return nil
}

// writeLocked pushes frame into the write buffer, preceded by any
// parked fire-and-forget frames — their FIFO registrations predate
// frame's, so they must hit the wire first. Draining the parked frames
// also disarms the flush timer: it has nothing left to push, and
// letting it fire anyway would cost a spurious wakeup per piggybacked
// op. Callers hold sendMu.
func (pc *peerConn) writeLocked(frame []byte) error {
	if len(pc.pending) > 0 {
		if _, err := pc.bw.Write(pc.pending); err != nil {
			return err
		}
		pc.pending = pc.pending[:0]
		if pc.timerArmed {
			pc.timerArmed = false
			pc.flushTimer.Stop()
		}
	}
	_, err := pc.bw.Write(frame)
	return err
}

// sendDeferred parks req in the pending buffer to ride ahead of the
// next frame written on the socket (arming the flush timer in case
// none comes), registering ch for the response exactly as send does.
// A nil ch registers nothing — for ops the server never answers
// (OpReleaseNoAck), where a registration would desync the FIFO.
// No syscall happens on this path.
func (pc *peerConn) sendDeferred(st *peerStream, req *Request, ch chan fwdResult) error {
	pc.waiters.Add(1)
	pc.sendMu.Lock()
	pc.waiters.Add(-1)
	mark := len(pc.pending)
	pc.pending = BeginFrame(pc.pending, st.id)
	var err error
	if pc.pending, err = AppendRequestBin(pc.pending, req); err != nil {
		pc.pending = pc.pending[:mark]
		pc.sendMu.Unlock()
		return err
	}
	pc.pending = EndFrame(pc.pending, mark)
	st.mu.Lock()
	if st.broken != nil {
		err = st.broken
		st.mu.Unlock()
		pc.pending = pc.pending[:mark]
		pc.sendMu.Unlock()
		return err
	}
	if ch != nil {
		st.queue = append(st.queue, ch)
	}
	st.mu.Unlock()
	if !pc.timerArmed {
		pc.timerArmed = true
		if pc.flushTimer == nil {
			pc.flushTimer = time.AfterFunc(deferredFlushDelay, pc.flushDeferred)
		} else {
			pc.flushTimer.Reset(deferredFlushDelay)
		}
	}
	pc.sendMu.Unlock()
	return nil
}

// flushDeferred is the flush timer's body: push out parked frames that
// found nothing to piggyback on within deferredFlushDelay.
func (pc *peerConn) flushDeferred() {
	pc.sendMu.Lock()
	pc.timerArmed = false
	if len(pc.pending) == 0 {
		pc.sendMu.Unlock()
		return
	}
	werr := pc.writeLocked(nil)
	if werr == nil && pc.waiters.Load() == 0 {
		werr = pc.bw.Flush()
	}
	pc.sendMu.Unlock()
	if werr != nil {
		pc.fail(fmt.Errorf("lockd: proxy peer write: %w", werr))
	}
}

// await delivers the result registered on ch, electing this goroutine
// the connection's reader when nobody else holds the readership. The
// protocol is lost-wakeup-proof: a waiter either takes the readership
// (and reads until its own response lands) or parks on both its channel
// and the incumbent reader's stepdown signal, re-running the election
// when the incumbent leaves — so a response can never be stranded in
// the socket with every waiter asleep.
func (pc *peerConn) await(ch chan fwdResult) fwdResult {
	for {
		select {
		case res := <-ch:
			return res
		default:
		}
		pc.mu.Lock()
		if pc.err != nil {
			pc.mu.Unlock()
			// The generation already failed: ch was registered, so fail
			// delivered (or the incumbent reader is a hair away from
			// delivering) its value.
			return <-ch
		}
		if !pc.readerOn {
			// Become the reader. The stepdown signal is created lazily by
			// the first waiter that actually parks behind us — the common
			// lone-waiter case never allocates it.
			pc.readerOn = true
			pc.mu.Unlock()
			res, ok := pc.readAsReader(ch)
			pc.mu.Lock()
			pc.readerOn = false
			gone := pc.readerGone
			pc.readerGone = nil
			pc.mu.Unlock()
			if gone != nil {
				close(gone)
			}
			if ok {
				return res
			}
			continue // the read failed; pick the delivered error up above
		}
		if pc.readerGone == nil {
			pc.readerGone = make(chan struct{})
		}
		gone := pc.readerGone
		pc.mu.Unlock()
		select {
		case res := <-ch:
			return res
		case <-gone:
		}
	}
}

// readAsReader reads and demultiplexes response frames — delivering
// every stream's responses to their registered channels — until own's
// response has been delivered, then returns it. ok is false when the
// socket died instead: the generation has been failed and every
// registered channel (own included) holds the error.
func (pc *peerConn) readAsReader(own chan fwdResult) (fwdResult, bool) {
	for {
		stream, ops, nbuf, err := ReadFrame(pc.br, pc.rbuf, pc.maxFrame)
		pc.rbuf = nbuf
		if err != nil {
			pc.fail(fmt.Errorf("lockd: proxy peer read: %w", err))
			return fwdResult{}, false
		}
		if stream == 0 {
			// A connection-fatal protocol error from the owner.
			var resp Response
			if _, derr := DecodeResponseBin(ops, &resp); derr == nil && resp.Err != "" {
				pc.fail(fmt.Errorf("lockd: proxy peer: %s", resp.Err))
			} else {
				pc.fail(errors.New("lockd: proxy peer closed the connection"))
			}
			return fwdResult{}, false
		}
		pc.mu.Lock()
		st := pc.streams[stream]
		pc.mu.Unlock()
		if st == nil {
			pc.fail(fmt.Errorf("lockd: proxy peer answered unknown stream %d", stream))
			return fwdResult{}, false
		}
		for len(ops) > 0 {
			var res fwdResult
			if ops, err = DecodeResponseBin(ops, &res.resp); err != nil {
				pc.fail(fmt.Errorf("lockd: proxy peer response: %w", err))
				return fwdResult{}, false
			}
			st.mu.Lock()
			var ch chan fwdResult
			if st.qhead < len(st.queue) {
				ch = st.queue[st.qhead]
				st.queue[st.qhead] = nil
				st.qhead++
				if st.qhead == len(st.queue) {
					st.queue = st.queue[:0]
					st.qhead = 0
				}
			}
			st.mu.Unlock()
			if ch == nil {
				pc.fail(fmt.Errorf("lockd: proxy peer sent an unrequested response on stream %d", stream))
				return fwdResult{}, false
			}
			ch <- res
		}
		select {
		case res := <-own:
			return res, true
		default:
		}
	}
}

// fail kills the generation: the error becomes sticky, the socket
// closes, and every waiter on every stream hears it.
func (pc *peerConn) fail(err error) {
	pc.mu.Lock()
	if pc.err != nil {
		pc.mu.Unlock()
		return
	}
	pc.err = err
	streams := pc.streams
	pc.streams = nil
	pc.mu.Unlock()
	pc.conn.Close()
	for _, st := range streams {
		st.fail(err)
	}
}

// peerStream is one forwarded client session's logical stream on a peer
// socket. Responses are matched to senders in FIFO order, which holds
// because registration and the frame write are atomic under sendMu.
type peerStream struct {
	pc *peerConn
	id uint32

	mu     sync.Mutex
	queue  []chan fwdResult
	qhead  int
	broken error
}

func (st *peerStream) fail(err error) {
	st.mu.Lock()
	st.broken = err
	waiters := st.queue[st.qhead:]
	st.queue = nil
	st.qhead = 0
	st.mu.Unlock()
	for _, ch := range waiters {
		if ch != nil {
			ch <- fwdResult{err: err}
		}
	}
}

// fwdChPool recycles the one-shot result channels of synchronous
// forwards. Only do may use it: its channels always receive exactly one
// value (the response, or the generation's failure) and are always
// drained before being returned, so a pooled channel is provably empty.
// postCancel's throwaway channels are NOT poolable — their response
// arrives after the sender moved on.
var fwdChPool = sync.Pool{New: func() any { return make(chan fwdResult, 1) }}

// do performs one synchronous forwarded round trip, reading the
// response off the socket itself when no other waiter already is.
func (st *peerStream) do(req *Request) (Response, error) {
	ch := fwdChPool.Get().(chan fwdResult)
	if err := st.pc.send(st, req, ch); err != nil {
		// Nothing was sent and ch was never registered; safe to recycle.
		fwdChPool.Put(ch)
		return Response{}, err
	}
	res := st.pc.await(ch)
	fwdChPool.Put(ch)
	return res.resp, res.err
}

// post fires a release and forgets it: the op goes out as
// OpReleaseNoAck, which the owner performs without answering, so no
// FIFO slot is registered and the owner's response batching stays
// undisturbed — a proxied acquire/release cycle draws exactly one
// response frame from the owner. The frame is parked to piggyback on
// the next send (or the flush timer).
func (st *peerStream) post(req *Request) error {
	noack := Request{Op: OpReleaseNoAck, Name: req.Name}
	return st.pc.sendDeferred(st, &noack, nil)
}

// postCancel forwards a cancel out of band, aborting a forwarded
// acquire blocked at the owner — the remote analogue of the local
// out-of-band cancelAcquire. Cancels are latency-critical, so they
// take the immediate path, never the pending buffer.
func (st *peerStream) postCancel(name string) {
	st.pc.send(st, &Request{Op: OpCancel, Name: name}, make(chan fwdResult, 1))
}

// end retires the stream at the owner (releasing its grants there) and
// forgets the id once the ack arrives — not before, or a reader would
// treat the in-flight ack as an unknown-stream protocol error. The
// spawned goroutine awaits (and so, on an otherwise idle connection,
// reads) the ack rather than just parking on the channel: with no
// standing read goroutine, an unread ack would strand the stream id in
// the map forever.
func (st *peerStream) end() {
	ch := make(chan fwdResult, 1)
	if err := st.pc.send(st, &Request{Op: OpEndStream}, ch); err != nil {
		return
	}
	go func() {
		st.pc.await(ch) // ack, or the generation's failure — either way the id is dead
		st.pc.forget(st.id)
	}()
}

// --- Server-side forwarding hooks (called from handle and teardown) ---

// remoteStream returns the session's forwarded stream to owner, opening
// one on first use. Lazy throughout: a session that never hits a
// foreign key never allocates any of this.
func (sess *session) remoteStream(s *Server, owner string) (*peerStream, error) {
	if st := sess.remotes[owner]; st != nil {
		return st, nil
	}
	st, err := s.peers.openStream(owner)
	if err != nil {
		return nil, err
	}
	if sess.remotes == nil {
		sess.remotes = make(map[string]*peerStream)
	}
	sess.remotes[owner] = st
	return st, nil
}

// dropRemote forgets a broken stream so the next forward redials, and
// drops every grant record that lived on it — those grants die with
// the socket at the owner.
func (sess *session) dropRemote(owner string, st *peerStream) {
	if sess.remotes[owner] == st {
		delete(sess.remotes, owner)
	}
	for name, o := range sess.remoteGrants {
		if o == owner {
			delete(sess.remoteGrants, name)
		}
	}
}

// maybeForward is the proxy-mode branch of the acquire/try ownership
// gate: redirect is the wrong_owner answer checkOwner produced; when
// forwarding is off (or this session's ops arrived over an inter-node
// connection — the hop cap) it is returned unchanged. Otherwise the op
// is forwarded to redirect.Owner and the owner's answer relayed,
// stamped with the owner hint. Any failure — dial, transport, or the
// owner's own divergent-view redirect — degrades to the redirect the
// client would have gotten anyway.
func (s *Server) maybeForward(sess *session, req Request, redirect Response, preBlock func()) Response {
	if !s.Proxy || sess.noForward || !redirect.WrongOwner || s.peers == nil {
		return stampRedirect(req.Name, redirect)
	}
	// A cancel that raced ahead of this acquire must abort it here,
	// exactly as beginFastAcquire would have locally.
	if req.Op == OpAcquire && sess.consumePendingCancel(req.Name) {
		return Response{OK: true, Aborted: true}
	}
	owner, epoch := redirect.Owner, redirect.Epoch
	st, err := sess.remoteStream(s, owner)
	if err != nil {
		s.proxyFallbacks.Add(1)
		return stampRedirect(req.Name, redirect)
	}
	if preBlock != nil {
		// The forward is at least one network round trip (and may block
		// at the owner): push out responses batched so far first.
		preBlock()
	}
	sess.beginRemote(req.Name, st)
	fresp, err := st.do(&req)
	sess.endRemote()
	if err != nil {
		sess.dropRemote(owner, st)
		s.proxyFallbacks.Add(1)
		return stampRedirect(req.Name, redirect)
	}
	if fresp.WrongOwner {
		// The owner's view disagrees (hop 2): relay its redirect rather
		// than chase it — the client re-routes with fresher information.
		s.proxyFallbacks.Add(1)
		return fresp
	}
	s.proxyForwarded.Add(1)
	if fresp.Acquired {
		if sess.remoteGrants == nil {
			sess.remoteGrants = make(map[string]string)
		}
		sess.remoteGrants[req.Name] = owner
	}
	if fresp.OK {
		fresp.OwnerHint = true
		fresp.Owner = owner
		fresp.Epoch = epoch
	}
	return fresp
}

// forwardRelease releases a proxied grant: fire-and-forget on the
// stream's FIFO (ordered before any later op there), answered OK
// immediately. If the stream is already gone the owner released the
// grant with the socket; either way the client no longer holds it.
func (s *Server) forwardRelease(sess *session, req Request, owner string) Response {
	delete(sess.remoteGrants, req.Name)
	st := sess.remotes[owner]
	if st == nil {
		return Response{OK: true}
	}
	if err := st.post(&req); err != nil {
		sess.dropRemote(owner, st)
		return Response{OK: true}
	}
	s.proxyForwarded.Add(1)
	return Response{OK: true}
}

// forwardHeld forwards a holds or named-heartbeat op for a proxied
// grant, synchronously — TTL and fenced answers are only worth
// relaying if they are the owner's truth. A lost stream means the
// owner reaped the grant: the truthful answer is fenced.
func (s *Server) forwardHeld(sess *session, req Request, owner string) Response {
	st := sess.remotes[owner]
	if st == nil {
		delete(sess.remoteGrants, req.Name)
		return Response{Err: fmt.Sprintf("lockd: proxied grant on %q lost with its owner connection", req.Name), Fenced: true}
	}
	fresp, err := st.do(&req)
	if err != nil {
		sess.dropRemote(owner, st)
		return Response{Err: fmt.Sprintf("lockd: proxied grant on %q lost with its owner connection", req.Name), Fenced: true}
	}
	s.proxyForwarded.Add(1)
	if fresp.Fenced || (req.Op == OpHolds && !fresp.Holds) {
		delete(sess.remoteGrants, req.Name)
	}
	return fresp
}

// heartbeatRemotes folds the session's proxied grants into a bare
// heartbeat: one forwarded bare heartbeat per owner stream, merging
// fenced and the tightest TTL with the local result. A broken stream
// counts as fenced — its grants died with the socket.
func (s *Server) heartbeatRemotes(sess *session, fenced *bool, min *time.Duration) {
	for owner, st := range sess.remotes {
		fresp, err := st.do(&Request{Op: OpHeartbeat})
		if err != nil {
			hadGrants := false
			for _, o := range sess.remoteGrants {
				if o == owner {
					hadGrants = true
					break
				}
			}
			sess.dropRemote(owner, st)
			if hadGrants {
				*fenced = true
			}
			continue
		}
		s.proxyForwarded.Add(1)
		if fresp.Fenced {
			*fenced = true
		}
		if ttl := time.Duration(fresp.TTLMS) * time.Millisecond; ttl > 0 && (*min == 0 || ttl < *min) {
			*min = ttl
		}
	}
}

// closeRemotes retires the session's forwarded streams so their owners
// release the proxied grants now instead of at lease expiry. Both
// transports' teardowns call it. Under Kill it does nothing: a
// simulated crash must leave remote grants to die by socket teardown,
// which Kill's peer-pool close performs — exactly what a real dead
// proxy's sockets would do.
func (s *Server) closeRemotes(sess *session) {
	if len(sess.remotes) == 0 || s.killed.Load() {
		return
	}
	for _, st := range sess.remotes {
		st.end()
	}
	sess.remotes = nil
	sess.remoteGrants = nil
}

// ProxyCounters reports how many ops this node forwarded to their
// owners and how many cross-node ops degraded to a client-visible
// redirect (unreachable peer, broken stream, or a divergent owner
// view).
func (s *Server) ProxyCounters() (forwarded, fallbacks uint64) {
	return s.proxyForwarded.Load(), s.proxyFallbacks.Load()
}
