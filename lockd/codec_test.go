package lockd

// Property-style codec tests: the hand-rolled encoder/decoder must agree
// with encoding/json on every field combination of the protocol's shapes
// — byte-identical encoding, and cross-decoding in both directions — so
// a codec client talks to a reflection server (and vice versa) without
// either noticing.

import (
	"encoding/json"
	"fmt"
	"math"
	"reflect"
	"strings"
	"testing"

	"anonmutex/internal/xrand"
	"anonmutex/lockd/wire"
)

var codecNames = []string{
	"",
	"a",
	"key-0001",
	"orders/2024/07/26",
	`with "quotes" and \backslashes\`,
	"uni: héllo ✓ 世界",
	"<html>&entities&</html>",
	"ctrl:\n\t\r\x01",
	"trailing space ",
	string(make([]byte, 300)), // long name of NULs: worst-case escaping
}

var codecTimeouts = []int64{0, 1, -5, 123456789, math.MaxInt64, math.MinInt64}

func checkRequestCodec(t *testing.T, req Request) {
	t.Helper()
	js, err := json.Marshal(req)
	if err != nil {
		t.Fatalf("json.Marshal(%+v): %v", req, err)
	}
	enc := AppendRequest(nil, &req)
	if string(enc) != string(js) {
		t.Errorf("encoding mismatch for %+v:\n codec: %s\n  json: %s", req, enc, js)
	}
	// Cross-decode: our decoder on encoding/json's bytes...
	var got Request
	if err := DecodeRequest(js, &got); err != nil {
		t.Fatalf("DecodeRequest(%s): %v", js, err)
	}
	if got != req {
		t.Errorf("DecodeRequest(json.Marshal) = %+v, want %+v", got, req)
	}
	// ...and encoding/json's decoder on ours.
	var jgot Request
	if err := json.Unmarshal(enc, &jgot); err != nil {
		t.Fatalf("json.Unmarshal(%s): %v", enc, err)
	}
	if jgot != req {
		t.Errorf("json.Unmarshal(AppendRequest) = %+v, want %+v", jgot, req)
	}
	checkRequestBinCodec(t, req)
}

// checkRequestBinCodec pins the semantic equivalence of the two wire
// formats: every protocol request round-trips binary→struct→JSON→struct
// to the identical value, so a binary client and a JSON client are
// indistinguishable to the server. Ops outside the protocol must be
// rejected by the binary encoder (the JSON format carries any string;
// the binary format's opcode table is closed on purpose).
func checkRequestBinCodec(t *testing.T, req Request) {
	t.Helper()
	enc, err := AppendRequestBin(nil, &req)
	if wire.Opcode(req.Op) == 0 {
		if err == nil {
			t.Errorf("AppendRequestBin(%+v) accepted an op with no opcode", req)
		}
		return
	}
	if err != nil {
		t.Fatalf("AppendRequestBin(%+v): %v", req, err)
	}
	var bgot Request
	rest, err := DecodeRequestBin(enc, &bgot)
	if err != nil {
		t.Fatalf("DecodeRequestBin(%+v): %v", req, err)
	}
	if len(rest) != 0 {
		t.Errorf("DecodeRequestBin(%+v) left %d trailing bytes", req, len(rest))
	}
	if bgot != req {
		t.Errorf("binary round trip = %+v, want %+v", bgot, req)
	}
	// The decoded struct must re-enter the JSON format unchanged.
	var jgot Request
	if err := json.Unmarshal(AppendRequest(nil, &bgot), &jgot); err != nil {
		t.Fatalf("json.Unmarshal(AppendRequest(binary round trip)): %v", err)
	}
	if jgot != req {
		t.Errorf("binary→struct→JSON→struct = %+v, want %+v", jgot, req)
	}
}

func TestRequestCodecAllFieldCombinations(t *testing.T) {
	ops := []string{OpAcquire, OpTryAcquire, OpRelease, OpCancel, OpHolds, OpHeartbeat, OpStats, OpPing, OpEndStream, "unknown-op", ""}
	for _, op := range ops {
		for _, name := range codecNames {
			for _, timeout := range codecTimeouts {
				checkRequestCodec(t, Request{Op: op, Name: name, TimeoutMS: timeout})
			}
		}
	}
}

func checkResponseCodec(t *testing.T, resp Response) {
	t.Helper()
	js, err := json.Marshal(resp)
	if err != nil {
		t.Fatalf("json.Marshal(%+v): %v", resp, err)
	}
	enc := AppendResponse(nil, &resp)
	if string(enc) != string(js) {
		t.Errorf("encoding mismatch for %+v:\n codec: %s\n  json: %s", resp, enc, js)
	}
	var got Response
	if err := DecodeResponse(js, &got); err != nil {
		t.Fatalf("DecodeResponse(%s): %v", js, err)
	}
	if !reflect.DeepEqual(got, resp) {
		t.Errorf("DecodeResponse(json.Marshal) = %+v, want %+v", got, resp)
	}
	var jgot Response
	if err := json.Unmarshal(enc, &jgot); err != nil {
		t.Fatalf("json.Unmarshal(%s): %v", enc, err)
	}
	if !reflect.DeepEqual(jgot, resp) {
		t.Errorf("json.Unmarshal(AppendResponse) = %+v, want %+v", jgot, resp)
	}
	checkResponseBinCodec(t, resp)
}

// checkResponseBinCodec is the response half of the cross-format
// equivalence property: binary→struct→JSON→struct must reproduce the
// value exactly, including full-range stats counters.
func checkResponseBinCodec(t *testing.T, resp Response) {
	t.Helper()
	enc := AppendResponseBin(nil, &resp)
	var bgot Response
	rest, err := DecodeResponseBin(enc, &bgot)
	if err != nil {
		t.Fatalf("DecodeResponseBin(%+v): %v", resp, err)
	}
	if len(rest) != 0 {
		t.Errorf("DecodeResponseBin(%+v) left %d trailing bytes", resp, len(rest))
	}
	if !reflect.DeepEqual(bgot, resp) {
		t.Errorf("binary round trip = %+v, want %+v", bgot, resp)
	}
	var jgot Response
	if err := json.Unmarshal(AppendResponse(nil, &bgot), &jgot); err != nil {
		t.Fatalf("json.Unmarshal(AppendResponse(binary round trip)): %v", err)
	}
	if !reflect.DeepEqual(jgot, resp) {
		t.Errorf("binary→struct→JSON→struct = %+v, want %+v", jgot, resp)
	}
}

func TestResponseCodecAllFieldCombinations(t *testing.T) {
	statsCases := []*Stats{
		nil,
		{},
		{
			Acquires: 1, Releases: 2, Waits: 3, TryAcquires: 4, TryFailures: 5,
			LockCreates: 6, Evictions: 7, ResidentLocks: 8, Aborts: 9,
			LeaseTimeouts: 10, Expired: 11, Revoked: 12, FencedRejects: 13,
			Violations: 14, Sessions: 15, Streams: 16,
		},
		{Acquires: math.MaxUint64, Violations: math.MaxUint64, FencedRejects: math.MaxUint64,
			ResidentLocks: math.MaxInt32, Sessions: -1, Streams: -64},
	}
	type leaseFields struct {
		token  uint64
		ttl    int64
		fenced bool
	}
	leaseCases := []leaseFields{
		{},
		{token: 1},
		{token: math.MaxUint64, ttl: 12345, fenced: true},
		{ttl: math.MaxInt64},
		{fenced: true},
	}
	type redirectFields struct {
		wrongOwner bool
		ownerHint  bool
		owner      string
		epoch      uint64
	}
	redirectCases := []redirectFields{
		{},
		{wrongOwner: true, owner: "10.0.0.7:7171", epoch: 3},
		{wrongOwner: true, owner: "", epoch: math.MaxUint64},
		{ownerHint: true, owner: "10.0.0.7:7171", epoch: 3},
		{ownerHint: true, owner: "", epoch: math.MaxUint64},
	}
	errs := []string{"", "lockd: session does not hold \"x\"", "uni ✓ <err>"}
	for _, ok := range []bool{false, true} {
		for _, errStr := range errs {
			for _, acquired := range []bool{false, true} {
				for _, aborted := range []bool{false, true} {
					for _, holds := range []bool{false, true} {
						for _, lf := range leaseCases {
							for _, rd := range redirectCases {
								for _, stats := range statsCases {
									checkResponseCodec(t, Response{
										OK: ok, Err: errStr, Acquired: acquired,
										Aborted: aborted, Holds: holds,
										Token: lf.token, TTLMS: lf.ttl, Fenced: lf.fenced,
										WrongOwner: rd.wrongOwner, OwnerHint: rd.ownerHint,
										Owner: rd.owner, Epoch: rd.epoch,
										Stats: stats,
									})
								}
							}
						}
					}
				}
			}
		}
	}
}

// TestResponseBinV1Dialect pins the legacy binary response dialect a
// BinaryMagic (v1) client decodes: lease fields are dropped on encode
// — byte-for-byte what a pre-lease server sent — stats carry the
// original 13-field sequence, and the v2 flag bits stay unknown to the
// v1 decoder. This is the compatibility contract that lets old binary
// clients talk to a lease-running server.
func TestResponseBinV1Dialect(t *testing.T) {
	full := Response{
		OK: true, Acquired: true, Token: 42, TTLMS: 1500, Fenced: true,
		Stats: &Stats{
			Acquires: 1, Releases: 2, Waits: 3, TryAcquires: 4, TryFailures: 5,
			LockCreates: 6, Evictions: 7, ResidentLocks: 8, Aborts: 9,
			LeaseTimeouts: 10, Expired: 11, Revoked: 12, FencedRejects: 13,
			Violations: 14, Sessions: 15, Streams: 16,
		},
	}
	enc := AppendResponseBinV1(nil, &full)
	var got Response
	rest, err := DecodeResponseBinV1(enc, &got)
	if err != nil {
		t.Fatalf("DecodeResponseBinV1: %v", err)
	}
	if len(rest) != 0 {
		t.Errorf("v1 decode left %d trailing bytes", len(rest))
	}
	want := full
	want.Token, want.TTLMS, want.Fenced = 0, 0, false
	ws := *full.Stats
	ws.Expired, ws.Revoked, ws.FencedRejects = 0, 0, 0
	want.Stats = &ws
	if !reflect.DeepEqual(got, want) {
		t.Errorf("v1 round trip = %+v, want %+v", got, want)
	}
	// A newer-dialect encoding of the same response must be rejected by
	// the v1 decoder: its lease/fenced flag bits are unknown there.
	v2 := AppendResponseBinV2(nil, &full)
	if _, err := DecodeResponseBinV1(v2, &got); err == nil {
		t.Error("v1 decoder accepted v2 lease flag bits")
	}
	// And a lease-free response must encode identically in every
	// dialect except for the stats tail — spot-check the plain case.
	plain := Response{OK: true, Holds: true}
	if v1, v3 := AppendResponseBinV1(nil, &plain), AppendResponseBin(nil, &plain); string(v1) != string(v3) {
		t.Errorf("lease-free response differs across dialects: v1=%x v3=%x", v1, v3)
	}
}

// TestResponseBinV2Dialect pins the v2 binary response dialect a
// BinaryMagicV2 client decodes: lease fields intact, but the redirect
// fields are dropped on encode — the peer sees only the refusal's
// error string, exactly what a pre-cluster server sent — and the v3
// redirect flag stays unknown to the v2 decoder. This is the contract
// that lets v2 binary clients talk to a clustered server: a redirect
// reaching them fails cleanly, never silently.
func TestResponseBinV2Dialect(t *testing.T) {
	redir := Response{
		Err:        `lockd: wrong owner for "k": try 10.0.0.7:7171`,
		WrongOwner: true, Owner: "10.0.0.7:7171", Epoch: 9,
		Token: 42, TTLMS: 1500, Fenced: true,
	}
	enc := AppendResponseBinV2(nil, &redir)
	var got Response
	rest, err := DecodeResponseBinV2(enc, &got)
	if err != nil {
		t.Fatalf("DecodeResponseBinV2: %v", err)
	}
	if len(rest) != 0 {
		t.Errorf("v2 decode left %d trailing bytes", len(rest))
	}
	want := redir
	want.WrongOwner, want.Owner, want.Epoch = false, "", 0
	if !reflect.DeepEqual(got, want) {
		t.Errorf("v2 round trip = %+v, want %+v", got, want)
	}
	if got.Err == "" || got.OK {
		t.Error("a redirect through the v2 dialect must stay a visible error")
	}

	// A v3 redirect encoding means nothing to a v2 decoder: the uvarint
	// flag field is not a valid v2 flags byte stream, so the decode
	// errors or yields garbage — never the redirect. The magic preamble
	// is what guarantees a v2 connection never receives these bytes;
	// this pins that the dialects really did diverge.
	v3 := AppendResponseBin(nil, &redir)
	var cross Response
	if _, err := DecodeResponseBinV2(v3, &cross); err == nil && reflect.DeepEqual(cross, got) {
		t.Error("v2 decoder understood a v3 redirect response; the dialect bump is not a bump")
	}

	// Responses whose flags fit seven bits encode identically in v2 and
	// v3 — the uvarint widening is free for every pre-redirect shape.
	lease := Response{OK: true, Acquired: true, Token: 7, TTLMS: 900}
	if v2, v3 := AppendResponseBinV2(nil, &lease), AppendResponseBin(nil, &lease); string(v2) != string(v3) {
		t.Errorf("lease response differs across v2/v3: v2=%x v3=%x", v2, v3)
	}
	// A fenced response is the first shape that does differ (bit 7 sets
	// the uvarint continuation bit in v3) — but both dialects must
	// decode their own bytes to the same value.
	fenced := Response{Err: "lockd: fenced", Fenced: true}
	var fromV2, fromV3 Response
	if _, err := DecodeResponseBinV2(AppendResponseBinV2(nil, &fenced), &fromV2); err != nil {
		t.Fatalf("v2 fenced round trip: %v", err)
	}
	if _, err := DecodeResponseBin(AppendResponseBin(nil, &fenced), &fromV3); err != nil {
		t.Fatalf("v3 fenced round trip: %v", err)
	}
	if !reflect.DeepEqual(fromV2, fromV3) {
		t.Errorf("fenced response decodes differently: v2=%+v v3=%+v", fromV2, fromV3)
	}
}

// TestRequestCodecRandomized hammers the string path with seeded random
// names mixing ASCII, escapes, multi-byte runes, and control characters.
func TestRequestCodecRandomized(t *testing.T) {
	r := xrand.New(7)
	alphabet := []rune("abz019_-./ \"\\<>&\t\nπ✓世\u2028\uffff")
	for i := 0; i < 2000; i++ {
		n := r.Intn(24)
		name := make([]rune, n)
		for j := range name {
			name[j] = alphabet[r.Intn(len(alphabet))]
		}
		checkRequestCodec(t, Request{
			Op:        OpAcquire,
			Name:      string(name),
			TimeoutMS: int64(r.Intn(1000)) - 500,
		})
	}
}

// TestDecodeForeignShapes: the decoder must accept what foreign clients
// may legally send — reordered fields, whitespace, unknown fields, null
// stats — exactly as encoding/json would.
func TestDecodeForeignShapes(t *testing.T) {
	cases := []struct {
		line string
		want Request
	}{
		{`{"name":"k","op":"acquire"}`, Request{Op: OpAcquire, Name: "k"}},
		{` { "op" : "try" , "timeout_ms" : 42 , "name" : "x" } `, Request{Op: OpTryAcquire, Name: "x", TimeoutMS: 42}},
		{`{"op":"ping","future_field":{"nested":[1,2.5,"s",null,true]},"name":"p"}`, Request{Op: OpPing, Name: "p"}},
		{`{"op":"release","name":"\u0068\u00e9\ud83d\ude00"}`, Request{Op: OpRelease, Name: "hé😀"}},
		{`{}`, Request{}},
	}
	for _, c := range cases {
		var got Request
		if err := DecodeRequest([]byte(c.line), &got); err != nil {
			t.Errorf("DecodeRequest(%s): %v", c.line, err)
			continue
		}
		if got != c.want {
			t.Errorf("DecodeRequest(%s) = %+v, want %+v", c.line, got, c.want)
		}
		var jgot Request
		if err := json.Unmarshal([]byte(c.line), &jgot); err != nil {
			t.Fatalf("control: json.Unmarshal(%s): %v", c.line, err)
		}
		if jgot != got {
			t.Errorf("decoder disagrees with encoding/json on %s: %+v vs %+v", c.line, got, jgot)
		}
	}

	var resp Response
	if err := DecodeResponse([]byte(`{"stats":null,"ok":true,"extra":"x"}`), &resp); err != nil {
		t.Fatalf("DecodeResponse with null stats: %v", err)
	}
	if !resp.OK || resp.Stats != nil {
		t.Errorf("null-stats decode = %+v", resp)
	}
}

// TestDecodeRejectsGarbage: malformed lines must error, not misparse.
func TestDecodeRejectsGarbage(t *testing.T) {
	for _, line := range []string{
		``, `x`, `{`, `{"op"}`, `{"op":}`, `{"op":"a"`, `{"op":"a",}`,
		`{"timeout_ms":"5"}`, `{"ok":1}`, `{"op":"a" "name":"b"}`,
		`{"name":"unterminated}`,
		// Trailing data after the object must be rejected, exactly as
		// encoding/json's "invalid character after top-level value" — a
		// second object on the line would otherwise be silently dropped
		// and desynchronize a pipelining client.
		`{"op":"ping"} junk`,
		`{"op":"acquire","name":"a"}{"op":"release","name":"a"}`,
	} {
		var req Request
		if err := DecodeRequest([]byte(line), &req); err == nil {
			// encoding/json must reject it too, or our decoder is stricter
			// than the contract.
			var jreq Request
			if jerr := json.Unmarshal([]byte(line), &jreq); jerr != nil {
				t.Errorf("DecodeRequest(%q) accepted what encoding/json rejects", line)
			}
		}
	}
}

// TestInterningDecode: the server-side decoder must reuse one string per
// recurring name, and the table must stay byte-bounded under a stream
// of unique names.
func TestInterningDecode(t *testing.T) {
	names := newNameTable()
	var a, b Request
	if err := decodeRequest([]byte(`{"op":"acquire","name":"hot-key"}`), &a, names); err != nil {
		t.Fatal(err)
	}
	if err := decodeRequest([]byte(`{"op":"release","name":"hot-key"}`), &b, names); err != nil {
		t.Fatal(err)
	}
	if len(names.m) != 1 {
		t.Fatalf("interning table has %d entries, want 1", len(names.m))
	}
	if a.Name != "hot-key" || b.Name != "hot-key" {
		t.Fatalf("interned names %q/%q", a.Name, b.Name)
	}

	// A pathological stream of unique long names must not grow the table
	// past its byte budget (plus one entry of slack around each reset).
	long := strings.Repeat("x", 1<<10)
	var req Request
	for i := 0; i < 4096; i++ {
		line := AppendRequest(nil, &Request{Op: OpHolds, Name: fmt.Sprintf("%s-%d", long, i)})
		if err := decodeRequest(line, &req, names); err != nil {
			t.Fatal(err)
		}
		if names.bytes > maxInternedNameBytes+len(long)+16 {
			t.Fatalf("interning table grew to %d bytes, budget %d", names.bytes, maxInternedNameBytes)
		}
	}
}

// BenchmarkCodec pits the hand codec against encoding/json on the
// steady-state shapes.
func BenchmarkCodec(b *testing.B) {
	req := Request{Op: OpAcquire, Name: "key-0001", TimeoutMS: 250}
	reqLine, _ := json.Marshal(req)
	resp := Response{OK: true, Acquired: true}
	respLine, _ := json.Marshal(resp)

	b.Run("encode-request", func(b *testing.B) {
		b.ReportAllocs()
		buf := make([]byte, 0, 256)
		for i := 0; i < b.N; i++ {
			buf = AppendRequest(buf[:0], &req)
		}
	})
	b.Run("encode-request-json", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := json.Marshal(req); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("decode-request", func(b *testing.B) {
		b.ReportAllocs()
		names := newNameTable()
		var r Request
		for i := 0; i < b.N; i++ {
			if err := decodeRequest(reqLine, &r, names); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("decode-request-json", func(b *testing.B) {
		b.ReportAllocs()
		var r Request
		for i := 0; i < b.N; i++ {
			r = Request{}
			if err := json.Unmarshal(reqLine, &r); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("encode-response", func(b *testing.B) {
		b.ReportAllocs()
		buf := make([]byte, 0, 256)
		for i := 0; i < b.N; i++ {
			buf = AppendResponse(buf[:0], &resp)
		}
	})
	b.Run("decode-response", func(b *testing.B) {
		b.ReportAllocs()
		var r Response
		for i := 0; i < b.N; i++ {
			if err := DecodeResponse(respLine, &r); err != nil {
				b.Fatal(err)
			}
		}
	})
	_ = fmt.Sprint()
}
