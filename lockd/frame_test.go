package lockd

// Frame-layer tests: the binary mirror of maxline_test.go's contract —
// frames beyond the limit (or malformed below it) error cleanly instead
// of ballooning memory or mis-framing — plus the fuzz harness pinning
// that arbitrary bytes never panic any binary decoder and never claim
// more bytes than are present. The committed seed corpus under
// testdata/fuzz/FuzzFrameDecode keeps the interesting shapes (valid
// batches, oversized lengths, truncations) in every CI run even without
// -fuzz.

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"strings"
	"testing"
)

// TestFrameRoundTrip: Begin/EndFrame against DecodeFrame and ReadFrame,
// including batched ops and trailing data (the next frame) left intact.
func TestFrameRoundTrip(t *testing.T) {
	reqs := []Request{
		{Op: OpAcquire, Name: "key-0001", TimeoutMS: 250},
		{Op: OpHolds, Name: "key-0001"},
		{Op: OpRelease, Name: "key-0001"},
		{Op: OpPing},
	}
	frame := BeginFrame(nil, 7)
	for i := range reqs {
		var err error
		if frame, err = AppendRequestBin(frame, &reqs[i]); err != nil {
			t.Fatal(err)
		}
	}
	frame = EndFrame(frame, 0)
	trailer := []byte("next frame bytes")
	wire := append(append([]byte{}, frame...), trailer...)

	stream, ops, rest, err := DecodeFrame(wire, 0)
	if err != nil {
		t.Fatal(err)
	}
	if stream != 7 {
		t.Errorf("stream = %d, want 7", stream)
	}
	if !bytes.Equal(rest, trailer) {
		t.Errorf("rest = %q, want %q", rest, trailer)
	}
	var got Request
	for i := range reqs {
		if ops, err = DecodeRequestBin(ops, &got); err != nil {
			t.Fatalf("op %d: %v", i, err)
		}
		if got != reqs[i] {
			t.Errorf("op %d = %+v, want %+v", i, got, reqs[i])
		}
	}
	if len(ops) != 0 {
		t.Errorf("%d trailing op bytes", len(ops))
	}

	// ReadFrame must agree with DecodeFrame on the same bytes.
	br := bufio.NewReader(bytes.NewReader(wire))
	rstream, rops, _, err := ReadFrame(br, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	if rstream != 7 || !bytes.Equal(rops, frame[frameHeaderLen:]) {
		t.Errorf("ReadFrame disagrees with DecodeFrame")
	}
	left, _ := io.ReadAll(br)
	if !bytes.Equal(left, trailer) {
		t.Errorf("ReadFrame consumed past its frame: %q left", left)
	}
}

// TestFrameLimitContract mirrors the oversized-line contract: a length
// prefix past the limit errors with the frame-limit error — before any
// payload is read — and a length too short to hold its stream id errors
// too; neither mis-frames.
func TestFrameLimitContract(t *testing.T) {
	huge := binary.LittleEndian.AppendUint32(nil, 1<<30)
	huge = binary.LittleEndian.AppendUint32(huge, 1)

	if _, _, _, err := DecodeFrame(huge, 1<<16); !errors.Is(err, errFrameTooBig) {
		t.Errorf("DecodeFrame oversize: %v", err)
	}
	// ReadFrame must reject on the header alone: the reader holds only 8
	// bytes, so reaching for the payload would block or fail — erroring
	// first is what keeps a hostile length from ballooning memory.
	br := bufio.NewReader(bytes.NewReader(huge))
	if _, _, _, err := ReadFrame(br, nil, 1<<16); !errors.Is(err, errFrameTooBig) {
		t.Errorf("ReadFrame oversize: %v", err)
	}

	short := binary.LittleEndian.AppendUint32(nil, 3)
	short = append(short, 0, 0, 0, 0)
	if _, _, _, err := DecodeFrame(short, 0); !errors.Is(err, errShortFrame) {
		t.Errorf("DecodeFrame short length: %v", err)
	}
	if _, _, _, err := ReadFrame(bufio.NewReader(bytes.NewReader(short)), nil, 0); !errors.Is(err, errShortFrame) {
		t.Errorf("ReadFrame short length: %v", err)
	}

	// Truncation: a frame that promises more than the stream holds.
	trunc := binary.LittleEndian.AppendUint32(nil, 100)
	trunc = binary.LittleEndian.AppendUint32(trunc, 1)
	trunc = append(trunc, "only a little"...)
	if _, _, _, err := DecodeFrame(trunc, 0); err == nil || !strings.Contains(err.Error(), "truncated") {
		t.Errorf("DecodeFrame truncated: %v", err)
	}
	if _, _, _, err := ReadFrame(bufio.NewReader(bytes.NewReader(trunc)), nil, 0); err != io.ErrUnexpectedEOF {
		t.Errorf("ReadFrame truncated: %v", err)
	}
}

// TestFrameBufferReuse: ReadFrame reuses the caller's buffer across
// frames and never allocates past the frame limit.
func TestFrameBufferReuse(t *testing.T) {
	var wire []byte
	for i := 0; i < 3; i++ {
		frame := BeginFrame(nil, uint32(i+1))
		frame, _ = AppendRequestBin(frame, &Request{Op: OpPing})
		wire = append(wire, EndFrame(frame, 0)...)
	}
	br := bufio.NewReader(bytes.NewReader(wire))
	var buf []byte
	var firstCap int
	for i := 0; i < 3; i++ {
		var err error
		_, _, buf, err = ReadFrame(br, buf, 1<<10)
		if err != nil {
			t.Fatal(err)
		}
		if cap(buf) > 1<<10 {
			t.Fatalf("buffer grew to %d, past the %d limit", cap(buf), 1<<10)
		}
		if i == 0 {
			firstCap = cap(buf)
		} else if cap(buf) != firstCap {
			t.Errorf("frame %d reallocated the buffer (cap %d -> %d)", i, firstCap, cap(buf))
		}
	}
}

// FuzzFrameDecode drives every binary decode surface with arbitrary
// bytes: framing, the op decoder over the frame's payload, and the
// response decoder over the same bytes. Nothing may panic; a decoded
// frame may never claim more bytes than are present or exceed the frame
// limit; and anything the decoders accept must re-encode to bytes that
// decode to the same values.
func FuzzFrameDecode(f *testing.F) {
	ping := BeginFrame(nil, 1)
	ping, _ = AppendRequestBin(ping, &Request{Op: OpPing})
	f.Add(EndFrame(ping, 0))
	batch := BeginFrame(nil, 42)
	batch, _ = AppendRequestBin(batch, &Request{Op: OpAcquire, Name: "key-0001", TimeoutMS: 250})
	batch, _ = AppendRequestBin(batch, &Request{Op: OpRelease, Name: "key-0001"})
	batch, _ = AppendRequestBin(batch, &Request{Op: OpEndStream})
	f.Add(EndFrame(batch, 0))
	f.Add(binary.LittleEndian.AppendUint32(nil, 0xFFFFFFFF))
	f.Add([]byte{3, 0, 0, 0, 0, 0, 0, 0})
	f.Add([]byte{10, 0, 0, 0, 1, 0})
	f.Add([]byte("junk that is not a frame"))
	resp := AppendResponseBin(nil, &Response{OK: true, Stats: &Stats{Acquires: 1 << 60, Sessions: -1}})
	f.Add(append([]byte{byte(len(resp) + 4), 0, 0, 0, 9, 0, 0, 0}, resp...))

	const max = 4096
	f.Fuzz(func(t *testing.T, data []byte) {
		stream, ops, rest, err := DecodeFrame(data, max)
		if err == nil {
			if len(ops) > max {
				t.Fatalf("frame of %d bytes accepted past the %d limit", len(ops), max)
			}
			if len(ops)+len(rest)+frameHeaderLen != len(data) {
				t.Fatalf("frame claims %d+%d bytes of %d", len(ops), len(rest), len(data))
			}
			// The ops payload must decode deterministically: each op
			// either errors (ending the stream) or round-trips.
			remaining := ops
			var req Request
			for len(remaining) > 0 {
				next, derr := DecodeRequestBin(remaining, &req)
				if derr != nil {
					break
				}
				if len(next) >= len(remaining) {
					t.Fatal("op decoder failed to consume input")
				}
				reenc, eerr := AppendRequestBin(nil, &req)
				if eerr != nil {
					t.Fatalf("decoded op %+v does not re-encode: %v", req, eerr)
				}
				var again Request
				if _, rerr := DecodeRequestBin(reenc, &again); rerr != nil || again != req {
					t.Fatalf("op round trip: %+v -> %+v (%v)", req, again, rerr)
				}
				remaining = next
			}
			// A valid frame must survive re-framing byte-identically.
			refrm := BeginFrame(nil, stream)
			refrm = EndFrame(append(refrm, ops...), 0)
			if !bytes.Equal(refrm, data[:len(data)-len(rest)]) {
				t.Fatalf("re-framed bytes differ")
			}
		}
		// ReadFrame must agree with DecodeFrame on validity.
		_, rops, rbuf, rerr := ReadFrame(bufio.NewReader(bytes.NewReader(data)), nil, max)
		if (err == nil) != (rerr == nil) {
			t.Fatalf("DecodeFrame err=%v but ReadFrame err=%v", err, rerr)
		}
		if rerr == nil && !bytes.Equal(rops, ops) {
			t.Fatal("ReadFrame and DecodeFrame disagree on the payload")
		}
		if cap(rbuf) > max {
			t.Fatalf("ReadFrame allocated %d bytes, past the %d limit", cap(rbuf), max)
		}
		// The response decoder gets the same hostile bytes.
		var resp Response
		if _, derr := DecodeResponseBin(data, &resp); derr == nil {
			reenc := AppendResponseBin(nil, &resp)
			var again Response
			if _, rerr := DecodeResponseBin(reenc, &again); rerr != nil {
				t.Fatalf("decoded response does not re-decode: %v", rerr)
			}
		}
	})
}
