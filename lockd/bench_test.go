// Hot-path benchmarks for the lockd service: full client→server→client
// round trips on an in-memory transport (net.Pipe — isolates the lockd
// stack from kernel TCP costs) and on real loopback TCP. These are the
// numbers tracked in BENCH_baseline.json; run with
//
//	go test -bench 'RoundTrip' -benchmem ./lockd
package lockd_test

import (
	"context"
	"fmt"
	"net"
	"sync/atomic"
	"testing"
	"time"

	"anonmutex/internal/lockmgr"
	"anonmutex/lockd"
	"anonmutex/lockd/client"
)

// pipeListener adapts a stream of pre-connected net.Pipe ends to the
// net.Listener surface Server.Serve wants.
func benchCtx() (context.Context, context.CancelFunc) {
	return context.WithTimeout(context.Background(), 5*time.Second)
}

type pipeListener struct {
	conns chan net.Conn
	done  chan struct{}
}

func newPipeListener() *pipeListener {
	return &pipeListener{conns: make(chan net.Conn), done: make(chan struct{})}
}

func (l *pipeListener) Accept() (net.Conn, error) {
	select {
	case c := <-l.conns:
		return c, nil
	case <-l.done:
		return nil, net.ErrClosed
	}
}

func (l *pipeListener) Close() error {
	select {
	case <-l.done:
	default:
		close(l.done)
	}
	return nil
}

func (l *pipeListener) Addr() net.Addr { return pipeAddr{} }

type pipeAddr struct{}

func (pipeAddr) Network() string { return "pipe" }
func (pipeAddr) String() string  { return "pipe" }

// benchPipeClient starts a server over an in-memory transport and returns
// a connected client session.
func benchPipeClient(b *testing.B) *client.Conn {
	b.Helper()
	mgr, err := lockmgr.New(lockmgr.Config{})
	if err != nil {
		b.Fatal(err)
	}
	srv := lockd.NewServer(mgr)
	ln := newPipeListener()
	go srv.Serve(ln)
	cs, ss := net.Pipe()
	ln.conns <- ss
	conn := client.NewConn(cs)
	b.Cleanup(func() {
		conn.Close()
		ctx, cancel := benchCtx()
		defer cancel()
		srv.Shutdown(ctx)
	})
	return conn
}

// benchTCPClient starts a server on loopback TCP and returns a connected
// client session.
func benchTCPClient(b *testing.B) *client.Conn {
	b.Helper()
	mgr, err := lockmgr.New(lockmgr.Config{})
	if err != nil {
		b.Fatal(err)
	}
	srv := lockd.NewServer(mgr)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	go srv.Serve(ln)
	conn, err := client.DialConn(ln.Addr().String())
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() {
		conn.Close()
		ctx, cancel := benchCtx()
		defer cancel()
		srv.Shutdown(ctx)
	})
	return conn
}

func benchRoundTrips(b *testing.B, conn *client.Conn) {
	b.Run("ping", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if err := conn.Ping(); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("acquire-release", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if err := conn.Acquire("bench-key"); err != nil {
				b.Fatal(err)
			}
			if err := conn.Release("bench-key"); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("acquirefor-release", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			ok, err := conn.AcquireFor("bench-key", time.Second)
			if err != nil {
				b.Fatal(err)
			}
			if !ok {
				b.Fatal("uncontended AcquireFor failed")
			}
			if err := conn.Release("bench-key"); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("batch-acquire-release", func(b *testing.B) {
		reqs := []lockd.Request{
			{Op: lockd.OpAcquire, Name: "bench-key"},
			{Op: lockd.OpRelease, Name: "bench-key"},
		}
		resps := make([]lockd.Response, len(reqs))
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if err := conn.Batch(reqs, resps); err != nil {
				b.Fatal(err)
			}
			if !resps[0].Acquired || !resps[1].OK {
				b.Fatalf("batch: %+v", resps)
			}
		}
	})
	b.Run("holds", func(b *testing.B) {
		if err := conn.Acquire("bench-key"); err != nil {
			b.Fatal(err)
		}
		defer conn.Release("bench-key")
		b.ResetTimer()
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			held, err := conn.Holds("bench-key")
			if err != nil {
				b.Fatal(err)
			}
			if !held {
				b.Fatal("holds = false for a held lock")
			}
		}
	})
}

// BenchmarkRoundTrip_Pipe is the uncontended single-client lockd round
// trip over an in-memory transport: the latency of the lockd stack itself
// (codec, session loop, lock manager) with no kernel networking.
func BenchmarkRoundTrip_Pipe(b *testing.B) {
	benchRoundTrips(b, benchPipeClient(b))
}

// BenchmarkRoundTrip_TCP is the same round trip over real loopback TCP.
func BenchmarkRoundTrip_TCP(b *testing.B) {
	benchRoundTrips(b, benchTCPClient(b))
}

// benchPipeMuxStream starts a server over an in-memory transport and
// returns one logical stream of a binary-protocol mux.
func benchPipeMuxStream(b *testing.B) *client.Conn {
	b.Helper()
	mgr, err := lockmgr.New(lockmgr.Config{})
	if err != nil {
		b.Fatal(err)
	}
	srv := lockd.NewServer(mgr)
	ln := newPipeListener()
	go srv.Serve(ln)
	cs, ss := net.Pipe()
	ln.conns <- ss
	mux := client.NewMux(cs)
	st, err := mux.Open()
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() {
		mux.Close()
		ctx, cancel := benchCtx()
		defer cancel()
		srv.Shutdown(ctx)
	})
	return st
}

// benchTCPMux starts a server on loopback TCP and returns a connected
// binary-protocol mux.
func benchTCPMux(b *testing.B) *client.Mux {
	b.Helper()
	mgr, err := lockmgr.New(lockmgr.Config{})
	if err != nil {
		b.Fatal(err)
	}
	srv := lockd.NewServer(mgr)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	go srv.Serve(ln)
	mux, err := client.DialMux(ln.Addr().String())
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() {
		mux.Close()
		ctx, cancel := benchCtx()
		defer cancel()
		srv.Shutdown(ctx)
	})
	return mux
}

// BenchmarkRoundTrip_PipeBinary is the binary-transport counterpart of
// BenchmarkRoundTrip_Pipe: the same logical round trips carried as
// length-prefixed frames over one mux stream. The delta against the
// JSON rows is the pure codec+framing win.
func BenchmarkRoundTrip_PipeBinary(b *testing.B) {
	benchRoundTrips(b, benchPipeMuxStream(b))
}

// BenchmarkRoundTrip_TCPBinary is the binary round trip over real
// loopback TCP — the headline uncontended acquire+release number for
// the multiplexed transport.
func BenchmarkRoundTrip_TCPBinary(b *testing.B) {
	mux := benchTCPMux(b)
	st, err := mux.Open()
	if err != nil {
		b.Fatal(err)
	}
	benchRoundTrips(b, st)
}

// BenchmarkMux_TCPStreams drives N logical streams over ONE TCP socket,
// each goroutine doing uncontended acquire+release on its own key: the
// multiplexing payoff — frame batching amortizes syscalls across
// streams, so aggregate throughput rises while the socket count stays
// at one.
func BenchmarkMux_TCPStreams(b *testing.B) {
	for _, streams := range []int{4, 16} {
		b.Run(fmt.Sprintf("streams=%d", streams), func(b *testing.B) {
			mux := benchTCPMux(b)
			var next atomic.Int32
			b.ReportAllocs()
			b.SetParallelism(streams)
			b.RunParallel(func(pb *testing.PB) {
				st, err := mux.Open()
				if err != nil {
					b.Fatal(err)
				}
				defer st.Close()
				key := fmt.Sprintf("bench-key-%d", next.Add(1))
				for pb.Next() {
					if err := st.Acquire(key); err != nil {
						b.Fatal(err)
					}
					if err := st.Release(key); err != nil {
						b.Fatal(err)
					}
				}
			})
		})
	}
}

// BenchmarkRoundTrip_PipeParallel drives one pipelined session from many
// goroutines, exercising response batching and flush coalescing.
func BenchmarkRoundTrip_PipeParallel(b *testing.B) {
	for _, clients := range []int{4, 16} {
		b.Run(fmt.Sprintf("goroutines=%d", clients), func(b *testing.B) {
			conn := benchPipeClient(b)
			b.ReportAllocs()
			b.SetParallelism(clients)
			b.RunParallel(func(pb *testing.PB) {
				for pb.Next() {
					if err := conn.Ping(); err != nil {
						b.Fatal(err)
					}
				}
			})
		})
	}
}
