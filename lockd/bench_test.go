// Hot-path benchmarks for the lockd service: full client→server→client
// round trips on an in-memory transport (net.Pipe — isolates the lockd
// stack from kernel TCP costs) and on real loopback TCP. These are the
// numbers tracked in BENCH_baseline.json; run with
//
//	go test -bench 'RoundTrip' -benchmem ./lockd
package lockd_test

import (
	"context"
	"fmt"
	"net"
	"testing"
	"time"

	"anonmutex/internal/lockmgr"
	"anonmutex/lockd"
	"anonmutex/lockd/client"
)

// pipeListener adapts a stream of pre-connected net.Pipe ends to the
// net.Listener surface Server.Serve wants.
func benchCtx() (context.Context, context.CancelFunc) {
	return context.WithTimeout(context.Background(), 5*time.Second)
}

type pipeListener struct {
	conns chan net.Conn
	done  chan struct{}
}

func newPipeListener() *pipeListener {
	return &pipeListener{conns: make(chan net.Conn), done: make(chan struct{})}
}

func (l *pipeListener) Accept() (net.Conn, error) {
	select {
	case c := <-l.conns:
		return c, nil
	case <-l.done:
		return nil, net.ErrClosed
	}
}

func (l *pipeListener) Close() error {
	select {
	case <-l.done:
	default:
		close(l.done)
	}
	return nil
}

func (l *pipeListener) Addr() net.Addr { return pipeAddr{} }

type pipeAddr struct{}

func (pipeAddr) Network() string { return "pipe" }
func (pipeAddr) String() string  { return "pipe" }

// benchPipeClient starts a server over an in-memory transport and returns
// a connected client session.
func benchPipeClient(b *testing.B) *client.Conn {
	b.Helper()
	mgr, err := lockmgr.New(lockmgr.Config{})
	if err != nil {
		b.Fatal(err)
	}
	srv := lockd.NewServer(mgr)
	ln := newPipeListener()
	go srv.Serve(ln)
	cs, ss := net.Pipe()
	ln.conns <- ss
	conn := client.NewConn(cs)
	b.Cleanup(func() {
		conn.Close()
		ctx, cancel := benchCtx()
		defer cancel()
		srv.Shutdown(ctx)
	})
	return conn
}

// benchTCPClient starts a server on loopback TCP and returns a connected
// client session.
func benchTCPClient(b *testing.B) *client.Conn {
	b.Helper()
	mgr, err := lockmgr.New(lockmgr.Config{})
	if err != nil {
		b.Fatal(err)
	}
	srv := lockd.NewServer(mgr)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	go srv.Serve(ln)
	conn, err := client.Dial(ln.Addr().String())
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() {
		conn.Close()
		ctx, cancel := benchCtx()
		defer cancel()
		srv.Shutdown(ctx)
	})
	return conn
}

func benchRoundTrips(b *testing.B, conn *client.Conn) {
	b.Run("ping", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if err := conn.Ping(); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("acquire-release", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if err := conn.Acquire("bench-key"); err != nil {
				b.Fatal(err)
			}
			if err := conn.Release("bench-key"); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("acquirefor-release", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			ok, err := conn.AcquireFor("bench-key", time.Second)
			if err != nil {
				b.Fatal(err)
			}
			if !ok {
				b.Fatal("uncontended AcquireFor failed")
			}
			if err := conn.Release("bench-key"); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("holds", func(b *testing.B) {
		if err := conn.Acquire("bench-key"); err != nil {
			b.Fatal(err)
		}
		defer conn.Release("bench-key")
		b.ResetTimer()
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			held, err := conn.Holds("bench-key")
			if err != nil {
				b.Fatal(err)
			}
			if !held {
				b.Fatal("holds = false for a held lock")
			}
		}
	})
}

// BenchmarkRoundTrip_Pipe is the uncontended single-client lockd round
// trip over an in-memory transport: the latency of the lockd stack itself
// (codec, session loop, lock manager) with no kernel networking.
func BenchmarkRoundTrip_Pipe(b *testing.B) {
	benchRoundTrips(b, benchPipeClient(b))
}

// BenchmarkRoundTrip_TCP is the same round trip over real loopback TCP.
func BenchmarkRoundTrip_TCP(b *testing.B) {
	benchRoundTrips(b, benchTCPClient(b))
}

// BenchmarkRoundTrip_PipeParallel drives one pipelined session from many
// goroutines, exercising response batching and flush coalescing.
func BenchmarkRoundTrip_PipeParallel(b *testing.B) {
	for _, clients := range []int{4, 16} {
		b.Run(fmt.Sprintf("goroutines=%d", clients), func(b *testing.B) {
			conn := benchPipeClient(b)
			b.ReportAllocs()
			b.SetParallelism(clients)
			b.RunParallel(func(pb *testing.PB) {
				for pb.Next() {
					if err := conn.Ping(); err != nil {
						b.Fatal(err)
					}
				}
			})
		})
	}
}
