package lockd_test

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"hash/fnv"
	"net"
	"strings"
	"testing"
	"time"

	"anonmutex/internal/cluster"
	"anonmutex/internal/lockmgr"
	"anonmutex/lockd"
	"anonmutex/lockd/client"
)

// clusterNode is one member of an in-test lockd cluster.
type clusterNode struct {
	addr string
	srv  *lockd.Server
	node *cluster.Node
	mgr  *lockmgr.Manager
	ln   net.Listener
}

// startCluster brings up n clustered lockd servers on loopback with fast
// gossip timings, waits for every member to see every other alive, and
// tears the whole thing down with the test.
func startCluster(t testing.TB, n int) []*clusterNode {
	t.Helper()
	return startClusterMode(t, n, false)
}

// startProxyCluster is startCluster with proxy-mode forwarding on at
// every member.
func startProxyCluster(t testing.TB, n int) []*clusterNode {
	t.Helper()
	return startClusterMode(t, n, true)
}

func startClusterMode(t testing.TB, n int, proxy bool) []*clusterNode {
	t.Helper()
	nodes := make([]*clusterNode, 0, n)
	var seeds []string
	for i := 0; i < n; i++ {
		mgr, err := lockmgr.New(lockmgr.Config{HandlesPerLock: 4})
		if err != nil {
			t.Fatal(err)
		}
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		cn, err := cluster.Start(cluster.Config{
			ID:           fmt.Sprintf("n%d", i),
			Addr:         ln.Addr().String(),
			GossipAddr:   "127.0.0.1:0",
			Seeds:        seeds,
			Interval:     20 * time.Millisecond,
			SuspectAfter: 120 * time.Millisecond,
			DeadAfter:    240 * time.Millisecond,
		})
		if err != nil {
			t.Fatal(err)
		}
		seeds = append(seeds, cn.GossipAddr())
		srv := lockd.NewServer(mgr)
		srv.LeaseTTL = time.Second
		srv.Cluster = cn
		srv.Proxy = proxy
		serveErr := make(chan error, 1)
		go func() { serveErr <- srv.Serve(ln) }()
		node := &clusterNode{addr: ln.Addr().String(), srv: srv, node: cn, mgr: mgr, ln: ln}
		nodes = append(nodes, node)
		t.Cleanup(func() {
			node.stop(t)
			if err := <-serveErr; err != nil {
				t.Errorf("Serve: %v", err)
			}
			mgr.Close()
		})
	}
	// Convergence: every node sees n alive members.
	deadline := time.Now().Add(5 * time.Second)
	for _, nd := range nodes {
		for {
			alive := 0
			for _, m := range nd.node.View().Members {
				if m.State == cluster.StateAlive {
					alive++
				}
			}
			if alive == n {
				break
			}
			if time.Now().After(deadline) {
				t.Fatalf("cluster did not converge: node %s sees %d/%d alive", nd.node.Self().ID, alive, n)
			}
			time.Sleep(10 * time.Millisecond)
		}
	}
	return nodes
}

// stop shuts one node down; killing it from the cluster's point of view
// (Close is silent — peers find out via the failure detector).
func (cn *clusterNode) stop(t testing.TB) {
	t.Helper()
	if cn.node != nil {
		cn.node.Close()
		cn.node = nil
	}
	if cn.srv != nil {
		ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		defer cancel()
		if err := cn.srv.Shutdown(ctx); err != nil {
			t.Errorf("Shutdown: %v", err)
		}
		cn.srv = nil
	}
}

// keyOwnedBy finds a lock name the given member owns under the current
// view (every member owns some key within a few dozen candidates).
func keyOwnedBy(t testing.TB, nodes []*clusterNode, id string) string {
	t.Helper()
	view := nodes[0].node.View()
	for i := 0; i < 10000; i++ {
		name := fmt.Sprintf("key-%d", i)
		if owner, ok := view.Owner(name); ok && owner.ID == id {
			return name
		}
	}
	t.Fatalf("no key hashed to member %s", id)
	return ""
}

// TestClusterServeNeedsLeases pins that a clustered server without
// leases refuses to serve: handoff safety depends on fencing tokens.
func TestClusterServeNeedsLeases(t *testing.T) {
	mgr, err := lockmgr.New(lockmgr.Config{HandlesPerLock: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer mgr.Close()
	cn, err := cluster.Start(cluster.Config{ID: "solo", Addr: "127.0.0.1:1", GossipAddr: "127.0.0.1:0"})
	if err != nil {
		t.Fatal(err)
	}
	defer cn.Close()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := lockd.NewServer(mgr)
	srv.Cluster = cn
	if err := srv.Serve(ln); err == nil || !strings.Contains(err.Error(), "LeaseTTL") {
		t.Fatalf("Serve without leases = %v, want a LeaseTTL error", err)
	}
}

// TestClusterRedirect exercises the v3 redirect through the modern
// client: the owning node grants, the other node redirects to it.
func TestClusterRedirect(t *testing.T) {
	nodes := startCluster(t, 2)
	key := keyOwnedBy(t, nodes, "n0")

	owner, err := client.DialConn(nodes[0].addr)
	if err != nil {
		t.Fatal(err)
	}
	defer owner.Close()
	if err := owner.Acquire(key); err != nil {
		t.Fatalf("acquire on the owning node: %v", err)
	}
	if tok := owner.Token(key); tok == 0 {
		t.Error("grant on a clustered server carried no fencing token")
	}
	if err := owner.Release(key); err != nil {
		t.Fatal(err)
	}

	other, err := client.DialConn(nodes[1].addr)
	if err != nil {
		t.Fatal(err)
	}
	defer other.Close()
	err = other.Acquire(key)
	var redir *client.RedirectError
	if !errors.As(err, &redir) {
		t.Fatalf("acquire on the wrong node = %v, want RedirectError", err)
	}
	if redir.Owner != nodes[0].addr {
		t.Errorf("redirect points at %q, want %q", redir.Owner, nodes[0].addr)
	}
	if redir.Epoch == 0 {
		t.Error("redirect carried no epoch")
	}
	// Grant-bound ops stay local: the wrong node answers about its own
	// state instead of redirecting, so holds on an unheld key is false.
	if held, err := other.Holds(key); err != nil || held {
		t.Errorf("Holds on non-owner = %v, %v", held, err)
	}
}

// TestClusterRoutedClient drives the unified routed client against the
// cluster: acquires land on owners transparently, tokens flow, and
// mutual exclusion holds across sessions routed independently.
func TestClusterRoutedClient(t *testing.T) {
	nodes := startCluster(t, 2)
	cl, err := client.Dial(client.Options{Addrs: []string{nodes[0].addr, nodes[1].addr}})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	s1, err := cl.Open()
	if err != nil {
		t.Fatal(err)
	}
	defer s1.Close()
	s2, err := cl.Open()
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()

	for _, key := range []string{keyOwnedBy(t, nodes, "n0"), keyOwnedBy(t, nodes, "n1")} {
		if err := s1.Acquire(key); err != nil {
			t.Fatalf("routed acquire of %s: %v", key, err)
		}
		if tok := s1.Token(key); tok == 0 {
			t.Errorf("routed grant on %s carried no token", key)
		}
		if ok, err := s2.TryAcquire(key); err != nil || ok {
			t.Errorf("TryAcquire of held %s = %v, %v; exclusion broken", key, ok, err)
		}
		if held, err := s1.Holds(key); err != nil || !held {
			t.Errorf("Holds(%s) = %v, %v", key, held, err)
		}
		if err := s1.Release(key); err != nil {
			t.Fatal(err)
		}
		if ok, err := s2.TryAcquire(key); err != nil || !ok {
			t.Fatalf("TryAcquire of released %s = %v, %v", key, ok, err)
		}
		if err := s2.Release(key); err != nil {
			t.Fatal(err)
		}
	}
	st, err := cl.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.Violations != 0 {
		t.Errorf("violations = %d", st.Violations)
	}
}

// TestClusterOldBinaryClients runs v1 and v2 binary clients against a
// clustered server: the owning node serves them untouched; the wrong
// node rejects cleanly — ok=false with an error they can surface — since
// their dialects cannot carry the redirect payload.
func TestClusterOldBinaryClients(t *testing.T) {
	nodes := startCluster(t, 2)
	ownKey := keyOwnedBy(t, nodes, "n0")
	awayKey := keyOwnedBy(t, nodes, "n1")

	dialects := []struct {
		name   string
		magic  [4]byte
		decode func([]byte, *lockd.Response) ([]byte, error)
	}{
		{"v1", lockd.BinaryMagic, lockd.DecodeResponseBinV1},
		{"v2", lockd.BinaryMagicV2, lockd.DecodeResponseBinV2},
	}
	for _, d := range dialects {
		t.Run(d.name, func(t *testing.T) {
			conn, err := net.Dial("tcp", nodes[0].addr)
			if err != nil {
				t.Fatal(err)
			}
			defer conn.Close()
			if _, err := conn.Write(d.magic[:]); err != nil {
				t.Fatal(err)
			}
			br := bufio.NewReader(conn)
			do := func(op, name string) lockd.Response {
				t.Helper()
				frame := lockd.BeginFrame(nil, 1)
				frame, err := lockd.AppendRequestBin(frame, &lockd.Request{Op: op, Name: name})
				if err != nil {
					t.Fatal(err)
				}
				if _, err := conn.Write(lockd.EndFrame(frame, 0)); err != nil {
					t.Fatal(err)
				}
				stream, ops, _, err := lockd.ReadFrame(br, nil, 0)
				if err != nil {
					t.Fatal(err)
				}
				if stream != 1 {
					t.Fatalf("response on stream %d", stream)
				}
				var resp lockd.Response
				if _, err := d.decode(ops, &resp); err != nil {
					t.Fatalf("%s decode: %v", d.name, err)
				}
				return resp
			}

			// The owning node serves the old dialect exactly as before.
			if resp := do(lockd.OpAcquire, ownKey); !resp.OK {
				t.Fatalf("%s acquire on owner failed: %+v", d.name, resp)
			}
			if resp := do(lockd.OpRelease, ownKey); !resp.OK {
				t.Fatalf("%s release on owner failed: %+v", d.name, resp)
			}
			// A key owned elsewhere fails loudly, never silently: the old
			// dialect drops the redirect payload but keeps the error.
			resp := do(lockd.OpTryAcquire, awayKey)
			if resp.OK {
				t.Fatalf("%s acquire of a foreign key succeeded on the wrong node", d.name)
			}
			if resp.Err == "" {
				t.Fatalf("%s wrong-owner rejection lost its error text", d.name)
			}
			if !strings.Contains(resp.Err, "wrong owner") {
				t.Errorf("%s err = %q", d.name, resp.Err)
			}
		})
	}
}

// TestClusterOldJSONClient sends a raw newline-JSON acquire — what a
// pre-cluster JSON client emits — to the wrong node and checks the
// response stays parseable and explicit for a reader that ignores the
// redirect fields.
func TestClusterOldJSONClient(t *testing.T) {
	nodes := startCluster(t, 2)
	awayKey := keyOwnedBy(t, nodes, "n1")

	conn, err := net.Dial("tcp", nodes[0].addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	fmt.Fprintf(conn, `{"op":%q,"name":%q}`+"\n", lockd.OpTryAcquire, awayKey)
	line, err := bufio.NewReader(conn).ReadString('\n')
	if err != nil {
		t.Fatal(err)
	}
	var resp struct {
		OK         bool   `json:"ok"`
		Err        string `json:"err"`
		WrongOwner bool   `json:"wrong_owner"`
		Owner      string `json:"owner"`
	}
	if err := json.Unmarshal([]byte(line), &resp); err != nil {
		t.Fatalf("unparseable response %q: %v", line, err)
	}
	if resp.OK {
		t.Fatal("foreign-key acquire succeeded on the wrong node")
	}
	if resp.Err == "" {
		t.Fatal("wrong-owner rejection without error text")
	}
	if !resp.WrongOwner || resp.Owner != nodes[1].addr {
		t.Errorf("redirect fields = %+v, want owner %s", resp, nodes[1].addr)
	}
}

// TestClusterBlockedAcquireRedirectsAfterHandoff pins the
// blocked-acquire handoff race: an acquire that parks behind a holder
// on the key's owner, and only unblocks because a membership change
// moved the key away (the handoff sweep revoked the holder), must
// answer a redirect to the new owner — not a grant. A grant here would
// attach after the sweep already scanned, leaving live grants for one
// key on two nodes with neither fencing token outranking the other.
func TestClusterBlockedAcquireRedirectsAfterHandoff(t *testing.T) {
	mgr, err := lockmgr.New(lockmgr.Config{HandlesPerLock: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer mgr.Close()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ca, err := cluster.Start(cluster.Config{
		ID:           "a",
		Addr:         ln.Addr().String(),
		GossipAddr:   "127.0.0.1:0",
		Interval:     20 * time.Millisecond,
		SuspectAfter: 120 * time.Millisecond,
		DeadAfter:    240 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	srv := lockd.NewServer(mgr)
	// TTL far beyond the test: only the handoff sweep can free the key.
	srv.LeaseTTL = time.Minute
	srv.Cluster = ca
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ln) }()
	defer func() {
		ca.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			t.Errorf("Shutdown: %v", err)
		}
		if err := <-serveErr; err != nil {
			t.Errorf("Serve: %v", err)
		}
	}()

	// A key that moves to b the moment b joins the two-member view.
	two := cluster.View{Members: []cluster.Member{{ID: "a"}, {ID: "b"}}}
	key := ""
	for i := 0; i < 10000 && key == ""; i++ {
		name := fmt.Sprintf("moved-%d", i)
		if owner, ok := two.Owner(name); ok && owner.ID == "b" {
			key = name
		}
	}
	if key == "" {
		t.Fatal("no key hashed to the joining member")
	}

	holder, err := client.DialConn(ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer holder.Close()
	if err := holder.Acquire(key); err != nil {
		t.Fatal(err)
	}

	waiter, err := client.DialConn(ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer waiter.Close()
	acquired := make(chan error, 1)
	go func() { acquired <- waiter.Acquire(key) }()
	// The waiter must actually be parked server-side before b joins, or
	// the pre-acquire ownership check would answer the redirect and
	// never exercise the post-acquire one. The pre-check runs within one
	// round trip of the request hitting the server, so after this settle
	// window the waiter is past it and blocked on the held lock.
	time.Sleep(300 * time.Millisecond)
	select {
	case err := <-acquired:
		t.Fatalf("waiter resolved before the handoff: %v", err)
	default:
	}

	// b joins cluster-only: the redirect names its lock address; no
	// lockd server needs to answer there for this test.
	const bAddr = "127.0.0.1:49999"
	cb, err := cluster.Start(cluster.Config{
		ID:         "b",
		Addr:       bAddr,
		GossipAddr: "127.0.0.1:0",
		Seeds:      []string{ca.GossipAddr()},
		Interval:   20 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cb.Close()

	select {
	case err := <-acquired:
		var redir *client.RedirectError
		if !errors.As(err, &redir) {
			t.Fatalf("blocked acquire after the handoff = %v, want RedirectError", err)
		}
		if redir.Owner != bAddr {
			t.Errorf("redirect points at %q, want %q", redir.Owner, bAddr)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("blocked acquire never resolved after the handoff revoked its holder")
	}
	// The holder was revoked by the sweep, not released: its own release
	// is fenced, and the lock manager records no violation.
	if err := holder.Release(key); !errors.Is(err, client.ErrFenced) {
		t.Errorf("holder release after handoff = %v, want ErrFenced", err)
	}
	if v := mgr.Violations(); v != 0 {
		t.Errorf("violations = %d", v)
	}
}

// TestClusterReleasePinSurvivesDialFailure pins the routed client's
// release routing: when the node that granted a key dies, a failed
// Release must not forget which address held the grant — a retry keeps
// routing there (and keeps failing as unavailable) instead of asking a
// surviving stranger that would answer "does not hold" while the grant
// waits out its TTL.
func TestClusterReleasePinSurvivesDialFailure(t *testing.T) {
	nodes := startCluster(t, 2)
	addrs := []string{nodes[0].addr, nodes[1].addr}

	// The key must be owned by n1 (so the grant lives there) AND have
	// its client-side fallback guess also land on n1 (so the acquire
	// goes direct and teaches the ownership cache nothing) — then, with
	// no grant pin, a retried release would fall back to n0 once n1 is
	// quarantined, and n0 would answer "does not hold". The guess
	// replicates the client's rendezvous hash over addresses.
	guess := func(name string) string {
		best, bestScore := "", uint64(0)
		for _, addr := range addrs {
			h := fnv.New64a()
			h.Write([]byte(addr))
			h.Write([]byte{0})
			h.Write([]byte(name))
			if score := h.Sum64(); best == "" || score > bestScore {
				best, bestScore = addr, score
			}
		}
		return best
	}
	view := nodes[0].node.View()
	key := ""
	for i := 0; i < 10000 && key == ""; i++ {
		name := fmt.Sprintf("pinned-%d", i)
		if owner, ok := view.Owner(name); ok && owner.ID == "n1" && guess(name) == nodes[1].addr {
			key = name
		}
	}
	if key == "" {
		t.Fatal("no key both owned by and guessed at n1")
	}

	cl, err := client.Dial(client.Options{Addrs: addrs})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	s, err := cl.Open()
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if err := s.Acquire(key); err != nil {
		t.Fatal(err)
	}

	nodes[1].stop(t)

	// Every retry must keep routing to the granting (dead) node: losing
	// the pin would send a retry to n0, whose "does not hold" answer
	// does not wrap ErrUnavailable.
	for attempt := 0; attempt < 3; attempt++ {
		err := s.Release(key)
		if err == nil {
			t.Fatalf("release attempt %d against the dead granting node succeeded", attempt)
		}
		if !errors.Is(err, client.ErrUnavailable) {
			t.Fatalf("release attempt %d = %v, want ErrUnavailable (a retry must keep routing to the granting node)", attempt, err)
		}
	}
}

// TestClusterFailoverTokens kills a key's owner and checks the handoff
// invariant: the surviving node grants the key again within the failure
// detector's budget, with a strictly larger fencing token under a newer
// epoch.
func TestClusterFailoverTokens(t *testing.T) {
	nodes := startCluster(t, 2)
	key := keyOwnedBy(t, nodes, "n1")
	epochBefore := nodes[0].node.Epoch()

	c1, err := client.DialConn(nodes[1].addr)
	if err != nil {
		t.Fatal(err)
	}
	if err := c1.Acquire(key); err != nil {
		t.Fatal(err)
	}
	tokenBefore := c1.Token(key)
	if tokenBefore == 0 {
		t.Fatal("no fencing token before failover")
	}
	if err := c1.Release(key); err != nil {
		t.Fatal(err)
	}
	c1.Close()

	// Kill the owner: cluster Close is silent (a crash, as peers see it).
	nodes[1].stop(t)

	// The survivor must take the key over within the detector's dead
	// timeout plus gossip slack, and grant it under a larger token.
	deadline := time.Now().Add(5 * time.Second)
	for {
		if owner, ok := nodes[0].node.Owner(key); ok && owner.ID == "n0" {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("ownership never moved to the survivor")
		}
		time.Sleep(10 * time.Millisecond)
	}
	if e := nodes[0].node.Epoch(); e <= epochBefore {
		t.Fatalf("epoch did not advance across the death: %d -> %d", epochBefore, e)
	}

	c0, err := client.DialConn(nodes[0].addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c0.Close()
	if ok, err := c0.TryAcquire(key); err != nil || !ok {
		t.Fatalf("survivor did not grant the moved key: %v, %v", ok, err)
	}
	tokenAfter := c0.Token(key)
	if tokenAfter <= tokenBefore {
		t.Fatalf("token did not advance across failover: %d -> %d", tokenBefore, tokenAfter)
	}
	if floor := cluster.TokenFloor(nodes[0].node.Epoch()); tokenAfter <= floor-1<<32 {
		t.Errorf("post-failover token %d below the previous epoch band", tokenAfter)
	}
}
