package lockd

// One logical session's state and the grant lifecycle around it. Both
// transports — the whole-connection JSON session and each stream of a
// binary connection — share this layer: the same session struct, the
// same out-of-band cancellation protocol, and the same single
// releaseGrant codepath.

import (
	"context"
	"sync"

	"anonmutex/internal/lockmgr"
)

// grant is one held lock plus the fencing token the lease subsystem
// stamped on it (0 when leases are disabled).
type grant struct {
	l     lockmgr.Lease
	token uint64
}

// session is one connection's state. The request-processing loop owns
// grants; mu guards only the fields the reader goroutine touches to
// implement out-of-band cancellation.
type session struct {
	grants map[string]grant

	// noForward marks a session whose ops arrived over an inter-node
	// proxy connection (BinaryMagicProxy): they were already forwarded
	// once, so foreign keys answer wrong_owner instead of forwarding
	// again — the structural hop cap that makes proxy loops impossible.
	noForward bool

	// remotes are this session's forwarded streams in proxy mode, one
	// per owner address; remoteGrants maps each proxied grant's name to
	// the owner address whose stream holds it. Both nil until the first
	// forward, so non-proxied sessions pay nothing. Owned by the
	// processing loop, like grants.
	remotes      map[string]*peerStream
	remoteGrants map[string]string

	mu             sync.Mutex
	inflightName   string             // name of the acquire being processed
	inflightCancel context.CancelFunc // cancels a slow-path acquire; nil when none
	fastInflight   bool               // a fast-path attempt is running for inflightName
	fastCancelled  bool               // a cancel matched that fast attempt
	cancelPending  bool               // a cancel arrived with no acquire in flight
	pendingName    string             // the name that pending cancel targets ("" = any)
	remoteInflight *peerStream        // stream carrying a forwarded acquire in flight; nil when none
}

func newSession() *session {
	return &session{grants: make(map[string]grant)}
}

// attachGrant stamps a freshly acquired lease with its fencing token
// (0 when leases are disabled). On error the lease subsystem has
// already released the underlying lock: the caller holds nothing and
// must not acknowledge the acquire.
func (s *Server) attachGrant(l lockmgr.Lease) (grant, error) {
	if s.leases != nil {
		tok, err := s.leases.Attach(l)
		if err != nil {
			return grant{}, err
		}
		return grant{l: l, token: tok}, nil
	}
	return grant{l: l}, nil
}

// grantResponse is the success response for a fresh acquire: the grant's
// fencing token plus the full TTL, so a client learns the heartbeat
// budget it must stay under without a separate negotiation round.
func (s *Server) grantResponse(g grant) Response {
	resp := Response{OK: true, Acquired: true, Token: g.token}
	if s.leases != nil {
		resp.TTLMS = ttlMillis(s.leases.TTL())
	}
	return resp
}

// releaseGrant gives one grant back through whichever authority owns
// it: the lease manager's token arbitration when leases run — so a
// session teardown racing a TTL expiry resolves to exactly one release
// — or the lock manager directly otherwise. The release op, the binary
// end_stream ack, and both transports' teardown paths all route here;
// there is exactly one release codepath.
func (s *Server) releaseGrant(g grant) error {
	if s.killed.Load() {
		// A killed server releases nothing: the simulated crash must
		// leave every grant active — in memory and in the journal — for
		// restart recovery to find.
		return nil
	}
	if s.leases != nil {
		return s.leases.Release(g.l.Name(), g.token)
	}
	return s.mgr.Release(g.l)
}

// beginFastAcquire registers the context-free fast-path attempt on name,
// or consumes a remembered cancel (one that raced ahead of the acquire
// line), reported as aborted=true: the attempt must not run.
func (sess *session) beginFastAcquire(name string) (aborted bool) {
	sess.mu.Lock()
	if sess.cancelPending && (sess.pendingName == "" || sess.pendingName == name) {
		sess.cancelPending = false
		sess.pendingName = ""
		sess.mu.Unlock()
		return true
	}
	sess.inflightName = name
	sess.fastInflight = true
	sess.fastCancelled = false
	sess.mu.Unlock()
	return false
}

// endFastAcquire clears the fast-path registration, reporting whether a
// cancel arrived during the attempt.
func (sess *session) endFastAcquire() (cancelled bool) {
	sess.mu.Lock()
	cancelled = sess.fastCancelled
	sess.fastCancelled = false
	sess.fastInflight = false
	sess.inflightName = ""
	sess.mu.Unlock()
	return cancelled
}

// beginAcquire installs ctx-cancellation for a slow-path acquire on name
// and returns the context the acquisition must use. A remembered cancel
// is consumed here: the returned context is already cancelled.
func (sess *session) beginAcquire(parent context.Context, name string) (context.Context, context.CancelFunc) {
	ctx, cancel := context.WithCancel(parent)
	sess.mu.Lock()
	sess.inflightName = name
	sess.inflightCancel = cancel
	if sess.cancelPending && (sess.pendingName == "" || sess.pendingName == name) {
		sess.cancelPending = false
		sess.pendingName = ""
		cancel()
	}
	sess.mu.Unlock()
	return ctx, cancel
}

// endAcquire clears the in-flight registration.
func (sess *session) endAcquire() {
	sess.mu.Lock()
	sess.inflightName = ""
	sess.inflightCancel = nil
	sess.mu.Unlock()
}

// cancelAcquire implements the cancel op's out-of-band side: abort the
// in-flight acquire if its name matches — whichever path it is on —
// otherwise remember the cancellation for the session's next acquire.
// A forwarded acquire blocked at another node is aborted by forwarding
// the cancel on its stream (from a goroutine: the reader must never
// block on an inter-node write); if the cancel loses the race against
// the grant, the owner remembers it for the stream's next acquire,
// mirroring the local remembered-cancel semantics.
func (sess *session) cancelAcquire(name string) {
	sess.mu.Lock()
	switch {
	case sess.inflightCancel != nil && (name == "" || name == sess.inflightName):
		sess.inflightCancel()
	case sess.fastInflight && (name == "" || name == sess.inflightName):
		sess.fastCancelled = true
	case sess.remoteInflight != nil && (name == "" || name == sess.inflightName):
		st := sess.remoteInflight
		go st.postCancel(name)
	default:
		sess.cancelPending = true
		sess.pendingName = name
	}
	sess.mu.Unlock()
}

// consumePendingCancel consumes a remembered cancel matching name (one
// that raced ahead of the acquire line), exactly as beginFastAcquire
// does for local acquires; the forwarding path checks it before paying
// the inter-node round trip.
func (sess *session) consumePendingCancel(name string) bool {
	sess.mu.Lock()
	defer sess.mu.Unlock()
	if sess.cancelPending && (sess.pendingName == "" || sess.pendingName == name) {
		sess.cancelPending = false
		sess.pendingName = ""
		return true
	}
	return false
}

// beginRemote registers a forwarded acquire in flight on st so an
// out-of-band cancel (or the teardown abort) can reach it at the owner.
func (sess *session) beginRemote(name string, st *peerStream) {
	sess.mu.Lock()
	sess.inflightName = name
	sess.remoteInflight = st
	sess.mu.Unlock()
}

func (sess *session) endRemote() {
	sess.mu.Lock()
	sess.inflightName = ""
	sess.remoteInflight = nil
	sess.mu.Unlock()
}

// abortRemote aborts a forwarded acquire blocked at another node — the
// remote analogue of the connection-context cancellation that reaps
// local acquires when a client disconnects. Called from transport
// teardown; the aborted response unblocks the processing loop so the
// session can drain.
func (sess *session) abortRemote() {
	sess.mu.Lock()
	st := sess.remoteInflight
	sess.mu.Unlock()
	if st != nil {
		st.postCancel("")
	}
}

// opQueue is the unbounded handoff between a session's reader and its
// processing loop (of request lines on the JSON path, of decoded ops on
// a binary stream). It must be unbounded: the reader can never be
// allowed to block on a full buffer, or a client that pipelines
// requests behind a blocked acquire and then drops its connection would
// park the reader mid-handoff — it would never return to Read, never
// observe the EOF, and the dead session's acquire would compete on as a
// ghost. Memory is bounded by what the client actually sends; the
// backing array is reused (a head cursor instead of re-slicing), so a
// steady-state session allocates nothing per item.
type opQueue[T any] struct {
	mu     sync.Mutex
	cond   *sync.Cond
	items  []T
	head   int
	closed bool
}

func newOpQueue[T any]() *opQueue[T] {
	q := &opQueue[T]{}
	q.cond = sync.NewCond(&q.mu)
	return q
}

// push appends an item. Never blocks.
func (q *opQueue[T]) push(in T) {
	q.mu.Lock()
	q.items = append(q.items, in)
	q.mu.Unlock()
	q.cond.Signal()
}

// pop removes the oldest item, blocking while the queue is empty and the
// stream still open. ok is false once the queue is drained and closed.
func (q *opQueue[T]) pop() (in T, ok bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	for q.head == len(q.items) && !q.closed {
		q.cond.Wait()
	}
	return q.popLocked()
}

// tryPop is pop without the blocking: ok is false whenever no item is
// ready right now (drained-and-closed included). The processing loop
// uses it to detect "no more pipelined work" and flush the write buffer
// before parking.
func (q *opQueue[T]) tryPop() (in T, ok bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.head == len(q.items) {
		var zero T
		return zero, false
	}
	return q.popLocked()
}

func (q *opQueue[T]) popLocked() (in T, ok bool) {
	var zero T
	if q.head == len(q.items) {
		return zero, false
	}
	in = q.items[q.head]
	q.items[q.head] = zero
	q.head++
	if q.head == len(q.items) {
		q.items = q.items[:0]
		q.head = 0
	}
	return in, true
}

// close marks the stream ended; pop drains the remainder then reports
// done.
func (q *opQueue[T]) close() {
	q.mu.Lock()
	q.closed = true
	q.mu.Unlock()
	q.cond.Broadcast()
}
