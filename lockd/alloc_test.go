package lockd

// The allocation budget the performance overhaul commits to: the
// server's steady-state request loop — decode one request line, execute
// it, encode the response — performs ZERO heap allocations for the hot
// ops (uncontended acquire, release, holds, ping, failed try) once the
// session and the lock entry are warm. BENCH_baseline.json tracks the
// numbers; this test enforces the budget so a regression fails CI
// instead of quietly eroding latency.

import (
	"context"
	"fmt"
	"testing"

	"anonmutex/internal/lockmgr"
)

// steadySession builds a warm server+session pair the way serveConn
// does, plus the reader-side interning table.
func steadySession(t *testing.T) (*Server, *session, *nameTable) {
	t.Helper()
	mgr, err := lockmgr.New(lockmgr.Config{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { mgr.Close() })
	s := NewServer(mgr)
	return s, newSession(), newNameTable()
}

// loop runs the exact per-request pipeline of the processing loop.
func loop(t *testing.T, s *Server, sess *session, names *nameTable, req *Request, respBuf []byte, line []byte) []byte {
	t.Helper()
	if err := decodeRequest(line, req, names); err != nil {
		t.Fatalf("decode %s: %v", line, err)
	}
	resp := s.handle(context.Background(), sess, *req, nil)
	if resp.Err != "" {
		t.Fatalf("handle %s: %s", line, resp.Err)
	}
	return AppendResponse(respBuf[:0], &resp)
}

func TestServerSteadyStateRequestLoopZeroAllocs(t *testing.T) {
	s, sess, names := steadySession(t)
	acquire := []byte(`{"op":"acquire","name":"hot-key"}`)
	release := []byte(`{"op":"release","name":"hot-key"}`)
	holds := []byte(`{"op":"holds","name":"hot-key"}`)
	ping := []byte(`{"op":"ping"}`)
	var req Request
	respBuf := make([]byte, 0, 256)

	// Warm up: materialize the lock entry, the handles, the interned
	// name, and the session map buckets.
	for i := 0; i < 3; i++ {
		respBuf = loop(t, s, sess, names, &req, respBuf, acquire)
		respBuf = loop(t, s, sess, names, &req, respBuf, holds)
		respBuf = loop(t, s, sess, names, &req, respBuf, release)
		respBuf = loop(t, s, sess, names, &req, respBuf, ping)
	}

	cases := []struct {
		name  string
		lines [][]byte
	}{
		{"acquire-release", [][]byte{acquire, release}},
		{"acquire-holds-release", [][]byte{acquire, holds, release}},
		{"ping", [][]byte{ping}},
	}
	for _, c := range cases {
		allocs := testing.AllocsPerRun(200, func() {
			for _, line := range c.lines {
				respBuf = loop(t, s, sess, names, &req, respBuf, line)
			}
		})
		if allocs != 0 {
			t.Errorf("%s: %.1f allocs per steady-state request loop, budget is 0", c.name, allocs)
		}
	}
}

// TestServerBinarySteadyStateZeroAllocs pins the same budget for the
// binary transport's per-op pipeline: decode one binary op, execute it,
// encode the response into the stream's frame. The framing itself
// (BeginFrame/EndFrame on a reused buffer) is included.
func TestServerBinarySteadyStateZeroAllocs(t *testing.T) {
	s, sess, names := steadySession(t)
	encode := func(req Request) []byte {
		op, err := AppendRequestBin(nil, &req)
		if err != nil {
			t.Fatal(err)
		}
		return op
	}
	acquire := encode(Request{Op: OpAcquire, Name: "hot-key"})
	release := encode(Request{Op: OpRelease, Name: "hot-key"})
	holds := encode(Request{Op: OpHolds, Name: "hot-key"})
	ping := encode(Request{Op: OpPing})
	var req Request
	frame := BeginFrame(make([]byte, 0, 512), 1)

	binLoop := func(op []byte) {
		if _, err := decodeRequestBin(op, &req, names); err != nil {
			t.Fatalf("decode: %v", err)
		}
		resp := s.handle(context.Background(), sess, req, nil)
		if resp.Err != "" {
			t.Fatalf("handle: %s", resp.Err)
		}
		frame = AppendResponseBin(frame, &resp)
		frame = EndFrame(frame, 0)
		frame = BeginFrame(frame[:0], 1)
	}
	for i := 0; i < 3; i++ {
		binLoop(acquire)
		binLoop(holds)
		binLoop(release)
		binLoop(ping)
	}
	allocs := testing.AllocsPerRun(200, func() {
		binLoop(acquire)
		binLoop(holds)
		binLoop(release)
		binLoop(ping)
	})
	if allocs != 0 {
		t.Errorf("binary loop: %.1f allocs per steady-state cycle, budget is 0", allocs)
	}
}

// TestServerFailedTryZeroAllocs covers the contended fail-fast probe: a
// try on a held lock must also stay off the heap.
func TestServerFailedTryZeroAllocs(t *testing.T) {
	s, sess, names := steadySession(t)
	other := newSession()
	var req Request
	respBuf := make([]byte, 0, 256)

	// Another session holds the lock.
	if err := decodeRequest([]byte(`{"op":"acquire","name":"hot-key"}`), &req, names); err != nil {
		t.Fatal(err)
	}
	if resp := s.handle(context.Background(), other, req, nil); !resp.Acquired {
		t.Fatalf("setup acquire failed: %+v", resp)
	}

	try := []byte(`{"op":"try","name":"hot-key"}`)
	for i := 0; i < 3; i++ {
		respBuf = loop(t, s, sess, names, &req, respBuf, try)
	}
	allocs := testing.AllocsPerRun(200, func() {
		respBuf = loop(t, s, sess, names, &req, respBuf, try)
	})
	if allocs != 0 {
		t.Errorf("failed try: %.1f allocs per request, budget is 0", allocs)
	}
	if err := decodeRequest([]byte(`{"op":"release","name":"hot-key"}`), &req, names); err != nil {
		t.Fatal(err)
	}
	if resp := s.handle(context.Background(), other, req, nil); !resp.OK {
		t.Fatalf("teardown release failed: %+v", resp)
	}
	_ = fmt.Sprint()
}
