package lockd

import (
	"context"
	"errors"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"anonmutex/internal/cluster"
	"anonmutex/internal/journal"
	"anonmutex/internal/lease"
	"anonmutex/internal/lockmgr"
)

// DefaultMaxLineBytes bounds one request line when Server.MaxLineBytes
// is zero.
const DefaultMaxLineBytes = 1 << 20

// errClusterNeedsLeases rejects a clustered server without leases: the
// ownership-handoff argument (revoke the old owner's grants, floor the
// new owner's tokens) only exists when grants carry fencing tokens.
var errClusterNeedsLeases = errors.New("lockd: clustered serving requires LeaseTTL > 0")

// errDurabilityNeedsLeases rejects a durable server without leases:
// the journal records lease transitions, so without the lease
// subsystem there is nothing to persist.
var errDurabilityNeedsLeases = errors.New("lockd: durable serving (Durability.Dir) requires LeaseTTL > 0")

// errProxyNeedsCluster rejects proxy mode on a single-node server:
// there is no owner to forward to without a membership view.
var errProxyNeedsCluster = errors.New("lockd: proxy mode requires Cluster")

// Durability configures the lease journal: when Dir is set (and
// LeaseTTL is positive), every lease transition is written to an
// append-only journal there, grants and renewals are committed per the
// Fsync policy before they are acknowledged, and a restarted server
// pointed at the same Dir recovers its grants — holders resume where
// they were instead of being expired. Set before Serve.
type Durability struct {
	// Dir is the journal directory. Empty disables persistence.
	Dir string
	// Fsync is the sync policy: "always" (the default — a grant is on
	// stable storage before the client hears about it), "interval"
	// (background fsync every FsyncInterval; a crash loses at most one
	// interval), or "off" (no explicit fsync; a machine crash may lose
	// anything the OS had not written back).
	Fsync string
	// FsyncInterval overrides the "interval" policy's period
	// (default 5ms).
	FsyncInterval time.Duration
	// CompactBytes overrides the journal size at which a snapshot is
	// taken and the log truncated (default 1 MiB).
	CompactBytes int64
}

// Server serves the lock protocol over a listener, one session per
// connection. Create with NewServer, start with Serve, stop with
// Shutdown.
//
// The per-request path is allocation-free at steady state: requests are
// decoded and responses encoded by the hand-rolled wire codec
// (AppendResponse/DecodeRequest), lock names are interned per session,
// responses are batched through a per-connection buffered writer that
// flushes only when no further pipelined request is already queued, and
// an uncontended acquire takes the lock manager's context-free fast path
// (lockmgr.AcquireFast) — the context and cancellation machinery is paid
// only when the lock is actually contended.
type Server struct {
	mgr *lockmgr.Manager

	// MaxWait, when nonzero, caps how long any acquire may wait — a
	// server-side SLA floor under which every waiter eventually aborts
	// even if the client asked for an unbounded acquire. Set before
	// Serve.
	MaxWait time.Duration

	// MaxLineBytes bounds one request line (default DefaultMaxLineBytes).
	// A longer line is a protocol error: the client gets one explanatory
	// error response and the connection closes, instead of the silent
	// stop a scanner-based reader would produce. Set before Serve.
	MaxLineBytes int

	// MaxFrameBytes bounds one binary frame's payload (default
	// DefaultMaxFrameBytes). An oversized frame is a protocol error
	// answered once on stream 0 before the connection closes — the
	// binary mirror of MaxLineBytes. Set before Serve.
	MaxFrameBytes int

	// LeaseTTL, when positive, runs every grant under the lease
	// subsystem: acquires are stamped with fencing tokens, holders must
	// heartbeat within the TTL or their grants are forcibly revoked, and
	// later ops on a revoked grant are rejected as fenced. Zero (the
	// default) keeps the original lease-free behavior exactly. Set
	// before Serve. Required (positive) when Cluster is set.
	LeaseTTL time.Duration

	// LeaseGrace overrides the post-expiry quarantine window during
	// which a revoked grant's token still answers with a fenced
	// rejection rather than an unknown-key error (default: LeaseTTL).
	// Set before Serve.
	LeaseGrace time.Duration

	// Cluster, when non-nil, makes this server one node of a lock
	// cluster: acquires for keys this node does not own are answered
	// with a wrong_owner redirect naming the owner, and on every
	// membership change the grants for keys that moved away are revoked
	// while the token counter is floored to the new epoch's band — so a
	// key's new owner always issues strictly larger fencing tokens than
	// its old one. Nil (the default) is single-node mode, byte-identical
	// to a server without a cluster. Set before Serve.
	Cluster *cluster.Node

	// Proxy, when true (clustered mode only), makes this node forward
	// acquire-type ops for keys it does not own to their owner over a
	// pooled inter-node connection and relay the answer — one
	// client-visible round trip — instead of redirecting. Responses to
	// forwarded ops carry an owner hint so routing clients converge to
	// direct routing; ops that arrive already forwarded are never
	// forwarded again (they degrade to a redirect), capping forwarding
	// at one hop however membership views diverge. Set before Serve.
	Proxy bool

	// Durability, when Dir is set, persists lease state to a journal so
	// restarts recover grants. Requires LeaseTTL > 0. Set before Serve.
	Durability Durability

	// leases is non-nil iff LeaseTTL was positive when Serve started.
	leases *lease.Manager

	// journal is non-nil iff Durability.Dir was set when Serve started.
	journal *journal.Log

	// recovered is how many grants Serve reattached from the journal.
	recovered uint64

	// killed marks a crash-simulated stop (Kill): session teardown must
	// not release grants — the "crash" has to leave them active for
	// recovery to find, in memory and in the journal alike.
	killed atomic.Bool

	// liveStreams counts live logical sessions: one per JSON connection,
	// one per open stream of a binary connection.
	liveStreams atomic.Int64

	// peers is the inter-node forwarding pool; non-nil iff Proxy was set
	// when Serve started.
	peers *peerPool

	// proxyForwarded counts ops forwarded to their owner; proxyFallbacks
	// counts cross-node ops that degraded to a client-visible redirect.
	proxyForwarded atomic.Uint64
	proxyFallbacks atomic.Uint64

	// handoffMu serializes clustered grant attachment (ownership re-check,
	// token-floor raise, token draw — commitAcquire) against the
	// membership-change revocation sweep (applyHandoff) and against other
	// attachments. The ordering this buys is the cluster-safety argument:
	// a grant attached under a view where this node owned the key either
	// completes before a sweep that moves the key away — and is then
	// revoked by that sweep — or starts after it, re-checks against the
	// new view, and answers a redirect instead of attaching. Exclusivity
	// between attachments keeps each token inside the band of the epoch
	// it was validated under: no concurrent floor raise can push a grant
	// validated under epoch E into E+1's band, where it could collide
	// with the tokens the key's next owner issues.
	handoffMu sync.Mutex

	mu          sync.Mutex
	ln          net.Listener
	conns       map[net.Conn]bool
	draining    bool
	handoffPend []cluster.View // views queued for the handoff worker (guarded by mu)
	handoffQuit chan struct{}  // closes when Shutdown begins; nil until wireCluster

	wg sync.WaitGroup
}

// NewServer wraps a lock manager. The caller keeps ownership of the
// manager (for stats or an in-process fast path); the server only
// acquires and releases through it.
func NewServer(mgr *lockmgr.Manager) *Server {
	return &Server{mgr: mgr, conns: make(map[net.Conn]bool)}
}

// Serve accepts connections until Shutdown closes the listener. It
// returns nil on graceful shutdown — including a Shutdown that happened
// before Serve was called — and the accept error otherwise.
func (s *Server) Serve(ln net.Listener) error {
	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		ln.Close()
		return nil
	}
	s.ln = ln
	if s.Cluster != nil && s.LeaseTTL <= 0 {
		s.mu.Unlock()
		ln.Close()
		return errClusterNeedsLeases
	}
	if s.Durability.Dir != "" && s.LeaseTTL <= 0 {
		s.mu.Unlock()
		ln.Close()
		return errDurabilityNeedsLeases
	}
	if s.Proxy && s.Cluster == nil {
		s.mu.Unlock()
		ln.Close()
		return errProxyNeedsCluster
	}
	if s.Proxy && s.peers == nil {
		s.peers = newPeerPool(s.MaxFrameBytes)
	}
	if s.leases == nil && s.LeaseTTL > 0 {
		cfg := lease.Config{TTL: s.LeaseTTL, Grace: s.LeaseGrace}
		if s.Durability.Dir != "" && s.journal == nil {
			pol, err := journal.ParseSync(s.Durability.Fsync)
			if err != nil {
				s.mu.Unlock()
				ln.Close()
				return err
			}
			jn, st, err := journal.Open(s.Durability.Dir, journal.Options{
				Sync:         pol,
				SyncEvery:    s.Durability.FsyncInterval,
				CompactBytes: s.Durability.CompactBytes,
			})
			if err != nil {
				s.mu.Unlock()
				ln.Close()
				return err
			}
			s.journal = jn
			cfg.Journal = jn
			cfg.Recovered = &st
		}
		lm, err := lease.New(s.mgr, cfg)
		if err != nil {
			if s.journal != nil {
				s.journal.Close()
				s.journal = nil
			}
			s.mu.Unlock()
			ln.Close()
			return err
		}
		s.leases = lm
		s.recovered = lm.Recovered()
	}
	if s.Cluster != nil && s.handoffQuit == nil {
		s.wireCluster()
	}
	s.mu.Unlock()
	for {
		conn, err := ln.Accept()
		if err != nil {
			s.mu.Lock()
			draining := s.draining
			s.mu.Unlock()
			if draining {
				return nil
			}
			return err
		}
		s.mu.Lock()
		if s.draining {
			s.mu.Unlock()
			conn.Close()
			continue
		}
		s.conns[conn] = true
		s.wg.Add(1)
		s.mu.Unlock()
		go s.serveConn(conn)
	}
}

// Shutdown stops the server: it closes the listener, waits for sessions
// to finish until ctx expires, then force-closes the remaining
// connections and waits for their cleanup (every session grant is
// released and every in-flight acquire is reaped either way). It always
// leaves the server fully drained.
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	s.draining = true
	ln := s.ln
	quit := s.handoffQuit
	s.handoffQuit = nil
	s.mu.Unlock()
	if ln != nil {
		ln.Close()
	}
	if quit != nil {
		// Stop the handoff worker before waiting on s.wg (it is counted
		// there); its revocation work is subsumed by leases.Close below.
		close(quit)
	}
	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
	case <-ctx.Done():
		s.mu.Lock()
		for conn := range s.conns {
			conn.Close()
		}
		s.mu.Unlock()
		<-done
	}
	// Every session has drained and released its live grants; what
	// remains in the lease manager are crash orphans (holders that
	// stopped heartbeating and kept their sockets open). Closing it
	// revokes them so the lock manager is fully checked in. The peer
	// pool closes only now — sessions needed it to retire their
	// forwarded streams during the drain above.
	s.mu.Lock()
	leases := s.leases
	jn := s.journal
	peers := s.peers
	s.mu.Unlock()
	if peers != nil {
		peers.Close()
	}
	if leases != nil {
		leases.Close()
	}
	// The journal closes after the lease manager: Close's revocations
	// are deliberately un-journaled (a graceful restart must recover
	// the orphans), so the close here just flushes and fsyncs what was
	// already recorded — an orderly shutdown never needs torn-tail
	// recovery.
	if jn != nil {
		jn.Close()
	}
	return nil
}

// Kill stops the server as kill -9 would, for crash testing: the
// listener and every connection close, but no grant is released, no
// lease revoked, and nothing further journaled — buffered journal
// frames are dropped exactly as a dead process drops them. A server
// opened later on the same Durability.Dir recovers what the sync
// policy guaranteed. Terminal: use instead of Shutdown, not before it.
func (s *Server) Kill() {
	s.killed.Store(true)
	s.mu.Lock()
	s.draining = true
	ln := s.ln
	quit := s.handoffQuit
	s.handoffQuit = nil
	conns := make([]net.Conn, 0, len(s.conns))
	for conn := range s.conns {
		conns = append(conns, conn)
	}
	s.mu.Unlock()
	if ln != nil {
		ln.Close()
	}
	if quit != nil {
		close(quit)
	}
	for _, conn := range conns {
		conn.Close()
	}
	// The peer pool dies with the process: its sockets break, so owners
	// release this node's forwarded grants by connection teardown —
	// exactly what a real crash would look like to them — and any
	// forward blocked on a response fails immediately instead of
	// stalling the drain below.
	s.mu.Lock()
	peers := s.peers
	s.mu.Unlock()
	if peers != nil {
		peers.Close()
	}
	// Sessions drain first (their teardown is a no-op under killed),
	// then the lease manager halts without revoking, then the journal
	// drops its buffer — the order matters: nothing may journal or
	// commit after the journal is abandoned.
	s.wg.Wait()
	s.mu.Lock()
	leases := s.leases
	jn := s.journal
	s.mu.Unlock()
	if leases != nil {
		leases.Abandon()
	}
	if jn != nil {
		jn.Abandon()
	}
}

// Recovered reports how many grants were reattached from the journal
// when Serve started.
func (s *Server) Recovered() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.recovered
}

// Sessions reports the number of live connections.
func (s *Server) Sessions() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.conns)
}

// acquireCtx derives the context governing one slow-path acquire from
// the session context, the request's timeout, and the server cap.
func (s *Server) acquireCtx(connCtx context.Context, req Request) (context.Context, context.CancelFunc) {
	timeout := time.Duration(req.TimeoutMS) * time.Millisecond
	if s.MaxWait > 0 && (timeout == 0 || timeout > s.MaxWait) {
		timeout = s.MaxWait
	}
	if timeout > 0 {
		return context.WithTimeout(connCtx, timeout)
	}
	return context.WithCancel(connCtx)
}
