package lockd

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"net"
	"sync"

	"anonmutex/internal/lockmgr"
)

// Server serves the lock protocol over a listener, one session per
// connection. Create with NewServer, start with Serve, stop with
// Shutdown.
type Server struct {
	mgr *lockmgr.Manager

	mu       sync.Mutex
	ln       net.Listener
	conns    map[net.Conn]bool
	draining bool

	wg sync.WaitGroup
}

// NewServer wraps a lock manager. The caller keeps ownership of the
// manager (for stats or an in-process fast path); the server only
// acquires and releases through it.
func NewServer(mgr *lockmgr.Manager) *Server {
	return &Server{mgr: mgr, conns: make(map[net.Conn]bool)}
}

// Serve accepts connections until Shutdown closes the listener. It
// returns nil on graceful shutdown — including a Shutdown that happened
// before Serve was called — and the accept error otherwise.
func (s *Server) Serve(ln net.Listener) error {
	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		ln.Close()
		return nil
	}
	s.ln = ln
	s.mu.Unlock()
	for {
		conn, err := ln.Accept()
		if err != nil {
			s.mu.Lock()
			draining := s.draining
			s.mu.Unlock()
			if draining {
				return nil
			}
			return err
		}
		s.mu.Lock()
		if s.draining {
			s.mu.Unlock()
			conn.Close()
			continue
		}
		s.conns[conn] = true
		s.wg.Add(1)
		s.mu.Unlock()
		go s.serveConn(conn)
	}
}

// Shutdown stops the server: it closes the listener, waits for sessions
// to finish until ctx expires, then force-closes the remaining
// connections and waits for their cleanup (every session grant is
// released either way). It always leaves the server fully drained.
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	s.draining = true
	ln := s.ln
	s.mu.Unlock()
	if ln != nil {
		ln.Close()
	}
	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
	case <-ctx.Done():
		s.mu.Lock()
		for conn := range s.conns {
			conn.Close()
		}
		s.mu.Unlock()
		<-done
	}
	return nil
}

// Sessions reports the number of live connections.
func (s *Server) Sessions() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.conns)
}

// serveConn runs one session: read a request line, execute, write a
// response line. Whatever ends the connection — client close, protocol
// error, or Shutdown — the deferred cleanup releases every grant the
// session still holds.
func (s *Server) serveConn(conn net.Conn) {
	session := make(map[string]*lockmgr.Grant)
	defer func() {
		for _, g := range session {
			g.Release()
		}
		conn.Close()
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
		s.wg.Done()
	}()

	scanner := bufio.NewScanner(conn)
	enc := json.NewEncoder(conn)
	for scanner.Scan() {
		var req Request
		if err := json.Unmarshal(scanner.Bytes(), &req); err != nil {
			// The stream is unparseable; answer once and hang up.
			enc.Encode(Response{Err: fmt.Sprintf("lockd: bad request: %v", err)})
			return
		}
		resp := s.handle(session, req)
		if err := enc.Encode(resp); err != nil {
			return
		}
	}
}

// handle executes one request against the session.
func (s *Server) handle(session map[string]*lockmgr.Grant, req Request) Response {
	needName := func() *Response {
		if req.Name == "" {
			return &Response{Err: fmt.Sprintf("lockd: %s needs a name", req.Op)}
		}
		return nil
	}
	switch req.Op {
	case OpAcquire:
		if r := needName(); r != nil {
			return *r
		}
		if _, held := session[req.Name]; held {
			return Response{Err: fmt.Sprintf("lockd: session already holds %q", req.Name)}
		}
		g, err := s.mgr.Acquire(req.Name)
		if err != nil {
			return Response{Err: err.Error()}
		}
		session[req.Name] = g
		return Response{OK: true, Acquired: true}
	case OpTryAcquire:
		if r := needName(); r != nil {
			return *r
		}
		if _, held := session[req.Name]; held {
			return Response{Err: fmt.Sprintf("lockd: session already holds %q", req.Name)}
		}
		g, ok, err := s.mgr.TryAcquire(req.Name)
		if err != nil {
			return Response{Err: err.Error()}
		}
		if !ok {
			return Response{OK: true, Acquired: false}
		}
		session[req.Name] = g
		return Response{OK: true, Acquired: true}
	case OpRelease:
		if r := needName(); r != nil {
			return *r
		}
		g, held := session[req.Name]
		if !held {
			return Response{Err: fmt.Sprintf("lockd: session does not hold %q", req.Name)}
		}
		delete(session, req.Name)
		if err := g.Release(); err != nil {
			return Response{Err: err.Error()}
		}
		return Response{OK: true}
	case OpHolds:
		if r := needName(); r != nil {
			return *r
		}
		_, held := session[req.Name]
		return Response{OK: true, Holds: held}
	case OpStats:
		c := s.mgr.Counters()
		return Response{OK: true, Stats: &Stats{
			Acquires:      c.Acquires,
			Releases:      c.Releases,
			Waits:         c.Waits,
			TryAcquires:   c.TryAcquires,
			TryFailures:   c.TryFailures,
			LockCreates:   c.LockCreates,
			Evictions:     c.Evictions,
			ResidentLocks: c.ResidentLocks,
			Violations:    s.mgr.Violations(),
			Sessions:      s.Sessions(),
		}}
	case OpPing:
		return Response{OK: true}
	default:
		return Response{Err: fmt.Sprintf("lockd: unknown op %q", req.Op)}
	}
}
