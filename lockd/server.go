package lockd

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"anonmutex/internal/lockmgr"
)

// Server serves the lock protocol over a listener, one session per
// connection. Create with NewServer, start with Serve, stop with
// Shutdown.
type Server struct {
	mgr *lockmgr.Manager

	// MaxWait, when nonzero, caps how long any acquire may wait — a
	// server-side SLA floor under which every waiter eventually aborts
	// even if the client asked for an unbounded acquire. Set before
	// Serve.
	MaxWait time.Duration

	mu       sync.Mutex
	ln       net.Listener
	conns    map[net.Conn]bool
	draining bool

	wg sync.WaitGroup
}

// NewServer wraps a lock manager. The caller keeps ownership of the
// manager (for stats or an in-process fast path); the server only
// acquires and releases through it.
func NewServer(mgr *lockmgr.Manager) *Server {
	return &Server{mgr: mgr, conns: make(map[net.Conn]bool)}
}

// Serve accepts connections until Shutdown closes the listener. It
// returns nil on graceful shutdown — including a Shutdown that happened
// before Serve was called — and the accept error otherwise.
func (s *Server) Serve(ln net.Listener) error {
	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		ln.Close()
		return nil
	}
	s.ln = ln
	s.mu.Unlock()
	for {
		conn, err := ln.Accept()
		if err != nil {
			s.mu.Lock()
			draining := s.draining
			s.mu.Unlock()
			if draining {
				return nil
			}
			return err
		}
		s.mu.Lock()
		if s.draining {
			s.mu.Unlock()
			conn.Close()
			continue
		}
		s.conns[conn] = true
		s.wg.Add(1)
		s.mu.Unlock()
		go s.serveConn(conn)
	}
}

// Shutdown stops the server: it closes the listener, waits for sessions
// to finish until ctx expires, then force-closes the remaining
// connections and waits for their cleanup (every session grant is
// released and every in-flight acquire is reaped either way). It always
// leaves the server fully drained.
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	s.draining = true
	ln := s.ln
	s.mu.Unlock()
	if ln != nil {
		ln.Close()
	}
	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
	case <-ctx.Done():
		s.mu.Lock()
		for conn := range s.conns {
			conn.Close()
		}
		s.mu.Unlock()
		<-done
	}
	return nil
}

// Sessions reports the number of live connections.
func (s *Server) Sessions() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.conns)
}

// session is one connection's state. The request-processing loop owns
// grants; mu guards only the fields the reader goroutine touches to
// implement out-of-band cancellation.
type session struct {
	grants map[string]*lockmgr.Grant

	mu             sync.Mutex
	inflightName   string             // name of the acquire being processed
	inflightCancel context.CancelFunc // cancels it; nil when none
	cancelPending  bool               // a cancel arrived with no acquire in flight
	pendingName    string             // the name that pending cancel targets ("" = any)
}

// beginAcquire installs ctx-cancellation for an acquire on name and
// returns the context the acquisition must use. A remembered cancel
// (one that raced ahead of the acquire line) is consumed here: the
// returned context is already cancelled.
func (sess *session) beginAcquire(parent context.Context, name string) (context.Context, context.CancelFunc) {
	ctx, cancel := context.WithCancel(parent)
	sess.mu.Lock()
	sess.inflightName = name
	sess.inflightCancel = cancel
	if sess.cancelPending && (sess.pendingName == "" || sess.pendingName == name) {
		sess.cancelPending = false
		sess.pendingName = ""
		cancel()
	}
	sess.mu.Unlock()
	return ctx, cancel
}

// endAcquire clears the in-flight registration.
func (sess *session) endAcquire() {
	sess.mu.Lock()
	sess.inflightName = ""
	sess.inflightCancel = nil
	sess.mu.Unlock()
}

// cancelAcquire implements the cancel op's out-of-band side: abort the
// in-flight acquire if its name matches, otherwise remember the
// cancellation for the session's next acquire.
func (sess *session) cancelAcquire(name string) {
	sess.mu.Lock()
	if sess.inflightCancel != nil && (name == "" || name == sess.inflightName) {
		sess.inflightCancel()
	} else {
		sess.cancelPending = true
		sess.pendingName = name
	}
	sess.mu.Unlock()
}

// inbound is one parsed request line, or the parse error that ended the
// stream.
type inbound struct {
	req      Request
	parseErr error
}

// lineQueue is the unbounded handoff between a session's reader and its
// processing loop. It must be unbounded: the reader can never be allowed
// to block on a full buffer, or a client that pipelines requests behind
// a blocked acquire and then drops its connection would park the reader
// mid-handoff — it would never return to Scan, never observe the EOF,
// and the dead session's acquire would compete on as a ghost. Memory is
// bounded by what the client actually sends.
type lineQueue struct {
	mu     sync.Mutex
	cond   *sync.Cond
	items  []inbound
	closed bool
}

func newLineQueue() *lineQueue {
	q := &lineQueue{}
	q.cond = sync.NewCond(&q.mu)
	return q
}

// push appends a line. Never blocks.
func (q *lineQueue) push(in inbound) {
	q.mu.Lock()
	q.items = append(q.items, in)
	q.mu.Unlock()
	q.cond.Signal()
}

// close marks the stream ended; pop drains the remainder then reports
// done.
func (q *lineQueue) close() {
	q.mu.Lock()
	q.closed = true
	q.mu.Unlock()
	q.cond.Broadcast()
}

// pop removes the oldest line, blocking while the queue is empty and the
// stream still open. ok is false once the queue is drained and closed.
func (q *lineQueue) pop() (in inbound, ok bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	for len(q.items) == 0 && !q.closed {
		q.cond.Wait()
	}
	if len(q.items) == 0 {
		return inbound{}, false
	}
	in = q.items[0]
	q.items = q.items[1:]
	return in, true
}

// serveConn runs one session. A dedicated reader goroutine feeds request
// lines to the processing loop, so the connection stays responsive while
// an acquire blocks: a cancel line aborts the in-flight acquire out of
// band (and still gets its response in order), and a connection drop
// cancels the whole session context, reaping any waiter the client
// abandoned. Whatever ends the connection — client close, protocol
// error, cancel-by-Shutdown — the deferred cleanup releases every grant
// the session still holds.
func (s *Server) serveConn(conn net.Conn) {
	sess := &session{grants: make(map[string]*lockmgr.Grant)}
	connCtx, connCancel := context.WithCancel(context.Background())
	defer func() {
		connCancel()
		for _, g := range sess.grants {
			g.Release()
		}
		conn.Close()
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
		s.wg.Done()
	}()

	lines := newLineQueue()
	go func() {
		defer lines.close()
		// The reader owns the inbound half: when Scan fails — client
		// disconnect, or conn.Close from Shutdown or a protocol error —
		// the session context is cancelled so a blocked acquire withdraws
		// instead of competing on behalf of a ghost. The queue's pushes
		// never block, so the reader is always back in Scan and observes
		// the disconnect promptly no matter how many lines are pipelined
		// behind a blocked acquire.
		defer connCancel()
		scanner := bufio.NewScanner(conn)
		for scanner.Scan() {
			var in inbound
			if err := json.Unmarshal(scanner.Bytes(), &in.req); err != nil {
				lines.push(inbound{parseErr: err})
				return
			}
			if in.req.Op == OpCancel {
				sess.cancelAcquire(in.req.Name)
			}
			lines.push(in)
		}
	}()

	enc := json.NewEncoder(conn)
	for {
		in, ok := lines.pop()
		if !ok {
			return
		}
		if in.parseErr != nil {
			// The stream is unparseable; answer once and hang up.
			enc.Encode(Response{Err: fmt.Sprintf("lockd: bad request: %v", in.parseErr)})
			return
		}
		resp := s.handle(connCtx, sess, in.req)
		if err := enc.Encode(resp); err != nil {
			return
		}
	}
}

// acquireCtx derives the context governing one acquire from the session
// context, the request's timeout, and the server cap.
func (s *Server) acquireCtx(connCtx context.Context, req Request) (context.Context, context.CancelFunc) {
	timeout := time.Duration(req.TimeoutMS) * time.Millisecond
	if s.MaxWait > 0 && (timeout == 0 || timeout > s.MaxWait) {
		timeout = s.MaxWait
	}
	if timeout > 0 {
		return context.WithTimeout(connCtx, timeout)
	}
	return context.WithCancel(connCtx)
}

// handle executes one request against the session.
func (s *Server) handle(connCtx context.Context, sess *session, req Request) Response {
	needName := func() *Response {
		if req.Name == "" {
			return &Response{Err: fmt.Sprintf("lockd: %s needs a name", req.Op)}
		}
		return nil
	}
	switch req.Op {
	case OpAcquire:
		if r := needName(); r != nil {
			return *r
		}
		if req.TimeoutMS < 0 {
			return Response{Err: fmt.Sprintf("lockd: negative timeout_ms %d", req.TimeoutMS)}
		}
		if _, held := sess.grants[req.Name]; held {
			return Response{Err: fmt.Sprintf("lockd: session already holds %q", req.Name)}
		}
		base, baseCancel := s.acquireCtx(connCtx, req)
		defer baseCancel()
		ctx, cancel := sess.beginAcquire(base, req.Name)
		defer cancel()
		g, err := s.mgr.AcquireCtx(ctx, req.Name)
		sess.endAcquire()
		if err != nil {
			if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
				return Response{OK: true, Aborted: true}
			}
			return Response{Err: err.Error()}
		}
		sess.grants[req.Name] = g
		return Response{OK: true, Acquired: true}
	case OpCancel:
		// The abort itself already happened out of band (or was
		// remembered) when the reader saw this line; this is just the
		// in-order acknowledgement.
		return Response{OK: true}
	case OpTryAcquire:
		if r := needName(); r != nil {
			return *r
		}
		if _, held := sess.grants[req.Name]; held {
			return Response{Err: fmt.Sprintf("lockd: session already holds %q", req.Name)}
		}
		g, ok, err := s.mgr.TryAcquire(req.Name)
		if err != nil {
			return Response{Err: err.Error()}
		}
		if !ok {
			return Response{OK: true, Acquired: false}
		}
		sess.grants[req.Name] = g
		return Response{OK: true, Acquired: true}
	case OpRelease:
		if r := needName(); r != nil {
			return *r
		}
		g, held := sess.grants[req.Name]
		if !held {
			return Response{Err: fmt.Sprintf("lockd: session does not hold %q", req.Name)}
		}
		delete(sess.grants, req.Name)
		if err := g.Release(); err != nil {
			return Response{Err: err.Error()}
		}
		return Response{OK: true}
	case OpHolds:
		if r := needName(); r != nil {
			return *r
		}
		_, held := sess.grants[req.Name]
		return Response{OK: true, Holds: held}
	case OpStats:
		c := s.mgr.Counters()
		return Response{OK: true, Stats: &Stats{
			Acquires:      c.Acquires,
			Releases:      c.Releases,
			Waits:         c.Waits,
			TryAcquires:   c.TryAcquires,
			TryFailures:   c.TryFailures,
			LockCreates:   c.LockCreates,
			Evictions:     c.Evictions,
			ResidentLocks: c.ResidentLocks,
			Aborts:        c.Aborts,
			LeaseTimeouts: c.LeaseTimeouts,
			Violations:    s.mgr.Violations(),
			Sessions:      s.Sessions(),
		}}
	case OpPing:
		return Response{OK: true}
	default:
		return Response{Err: fmt.Sprintf("lockd: unknown op %q", req.Op)}
	}
}
