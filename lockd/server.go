package lockd

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"anonmutex/internal/lease"
	"anonmutex/internal/lockmgr"
)

// DefaultMaxLineBytes bounds one request line when Server.MaxLineBytes
// is zero.
const DefaultMaxLineBytes = 1 << 20

// Server serves the lock protocol over a listener, one session per
// connection. Create with NewServer, start with Serve, stop with
// Shutdown.
//
// The per-request path is allocation-free at steady state: requests are
// decoded and responses encoded by the hand-rolled wire codec
// (AppendResponse/DecodeRequest), lock names are interned per session,
// responses are batched through a per-connection buffered writer that
// flushes only when no further pipelined request is already queued, and
// an uncontended acquire takes the lock manager's context-free fast path
// (lockmgr.AcquireFast) — the context and cancellation machinery is paid
// only when the lock is actually contended.
type Server struct {
	mgr *lockmgr.Manager

	// MaxWait, when nonzero, caps how long any acquire may wait — a
	// server-side SLA floor under which every waiter eventually aborts
	// even if the client asked for an unbounded acquire. Set before
	// Serve.
	MaxWait time.Duration

	// MaxLineBytes bounds one request line (default DefaultMaxLineBytes).
	// A longer line is a protocol error: the client gets one explanatory
	// error response and the connection closes, instead of the silent
	// stop a scanner-based reader would produce. Set before Serve.
	MaxLineBytes int

	// MaxFrameBytes bounds one binary frame's payload (default
	// DefaultMaxFrameBytes). An oversized frame is a protocol error
	// answered once on stream 0 before the connection closes — the
	// binary mirror of MaxLineBytes. Set before Serve.
	MaxFrameBytes int

	// LeaseTTL, when positive, runs every grant under the lease
	// subsystem: acquires are stamped with fencing tokens, holders must
	// heartbeat within the TTL or their grants are forcibly revoked, and
	// later ops on a revoked grant are rejected as fenced. Zero (the
	// default) keeps the original lease-free behavior exactly. Set
	// before Serve.
	LeaseTTL time.Duration

	// LeaseGrace overrides the post-expiry quarantine window during
	// which a revoked grant's token still answers with a fenced
	// rejection rather than an unknown-key error (default: LeaseTTL).
	// Set before Serve.
	LeaseGrace time.Duration

	// leases is non-nil iff LeaseTTL was positive when Serve started.
	leases *lease.Manager

	// liveStreams counts live logical sessions: one per JSON connection,
	// one per open stream of a binary connection.
	liveStreams atomic.Int64

	mu       sync.Mutex
	ln       net.Listener
	conns    map[net.Conn]bool
	draining bool

	wg sync.WaitGroup
}

// NewServer wraps a lock manager. The caller keeps ownership of the
// manager (for stats or an in-process fast path); the server only
// acquires and releases through it.
func NewServer(mgr *lockmgr.Manager) *Server {
	return &Server{mgr: mgr, conns: make(map[net.Conn]bool)}
}

// Serve accepts connections until Shutdown closes the listener. It
// returns nil on graceful shutdown — including a Shutdown that happened
// before Serve was called — and the accept error otherwise.
func (s *Server) Serve(ln net.Listener) error {
	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		ln.Close()
		return nil
	}
	s.ln = ln
	if s.leases == nil && s.LeaseTTL > 0 {
		lm, err := lease.New(s.mgr, lease.Config{TTL: s.LeaseTTL, Grace: s.LeaseGrace})
		if err != nil {
			s.mu.Unlock()
			ln.Close()
			return err
		}
		s.leases = lm
	}
	s.mu.Unlock()
	for {
		conn, err := ln.Accept()
		if err != nil {
			s.mu.Lock()
			draining := s.draining
			s.mu.Unlock()
			if draining {
				return nil
			}
			return err
		}
		s.mu.Lock()
		if s.draining {
			s.mu.Unlock()
			conn.Close()
			continue
		}
		s.conns[conn] = true
		s.wg.Add(1)
		s.mu.Unlock()
		go s.serveConn(conn)
	}
}

// Shutdown stops the server: it closes the listener, waits for sessions
// to finish until ctx expires, then force-closes the remaining
// connections and waits for their cleanup (every session grant is
// released and every in-flight acquire is reaped either way). It always
// leaves the server fully drained.
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	s.draining = true
	ln := s.ln
	s.mu.Unlock()
	if ln != nil {
		ln.Close()
	}
	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
	case <-ctx.Done():
		s.mu.Lock()
		for conn := range s.conns {
			conn.Close()
		}
		s.mu.Unlock()
		<-done
	}
	// Every session has drained and released its live grants; what
	// remains in the lease manager are crash orphans (holders that
	// stopped heartbeating and kept their sockets open). Closing it
	// revokes them so the lock manager is fully checked in.
	s.mu.Lock()
	leases := s.leases
	s.mu.Unlock()
	if leases != nil {
		leases.Close()
	}
	return nil
}

// Sessions reports the number of live connections.
func (s *Server) Sessions() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.conns)
}

// grant is one held lock plus the fencing token the lease subsystem
// stamped on it (0 when leases are disabled).
type grant struct {
	l     lockmgr.Lease
	token uint64
}

// session is one connection's state. The request-processing loop owns
// grants; mu guards only the fields the reader goroutine touches to
// implement out-of-band cancellation.
type session struct {
	grants map[string]grant

	mu             sync.Mutex
	inflightName   string             // name of the acquire being processed
	inflightCancel context.CancelFunc // cancels a slow-path acquire; nil when none
	fastInflight   bool               // a fast-path attempt is running for inflightName
	fastCancelled  bool               // a cancel matched that fast attempt
	cancelPending  bool               // a cancel arrived with no acquire in flight
	pendingName    string             // the name that pending cancel targets ("" = any)
}

func newSession() *session {
	return &session{grants: make(map[string]grant)}
}

// attachGrant stamps a freshly acquired lease with its fencing token
// (0 when leases are disabled).
func (s *Server) attachGrant(l lockmgr.Lease) grant {
	if s.leases != nil {
		return grant{l: l, token: s.leases.Attach(l)}
	}
	return grant{l: l}
}

// grantResponse is the success response for a fresh acquire: the grant's
// fencing token plus the full TTL, so a client learns the heartbeat
// budget it must stay under without a separate negotiation round.
func (s *Server) grantResponse(g grant) Response {
	resp := Response{OK: true, Acquired: true, Token: g.token}
	if s.leases != nil {
		resp.TTLMS = ttlMillis(s.leases.TTL())
	}
	return resp
}

// releaseGrant gives one grant back through whichever authority owns
// it: the lease manager's token arbitration when leases run — so a
// session teardown racing a TTL expiry resolves to exactly one release
// — or the lock manager directly otherwise. The release op, the binary
// end_stream ack, and both transports' teardown paths all route here;
// there is exactly one release codepath.
func (s *Server) releaseGrant(g grant) error {
	if s.leases != nil {
		return s.leases.Release(g.l.Name(), g.token)
	}
	return s.mgr.Release(g.l)
}

// beginFastAcquire registers the context-free fast-path attempt on name,
// or consumes a remembered cancel (one that raced ahead of the acquire
// line), reported as aborted=true: the attempt must not run.
func (sess *session) beginFastAcquire(name string) (aborted bool) {
	sess.mu.Lock()
	if sess.cancelPending && (sess.pendingName == "" || sess.pendingName == name) {
		sess.cancelPending = false
		sess.pendingName = ""
		sess.mu.Unlock()
		return true
	}
	sess.inflightName = name
	sess.fastInflight = true
	sess.fastCancelled = false
	sess.mu.Unlock()
	return false
}

// endFastAcquire clears the fast-path registration, reporting whether a
// cancel arrived during the attempt.
func (sess *session) endFastAcquire() (cancelled bool) {
	sess.mu.Lock()
	cancelled = sess.fastCancelled
	sess.fastCancelled = false
	sess.fastInflight = false
	sess.inflightName = ""
	sess.mu.Unlock()
	return cancelled
}

// beginAcquire installs ctx-cancellation for a slow-path acquire on name
// and returns the context the acquisition must use. A remembered cancel
// is consumed here: the returned context is already cancelled.
func (sess *session) beginAcquire(parent context.Context, name string) (context.Context, context.CancelFunc) {
	ctx, cancel := context.WithCancel(parent)
	sess.mu.Lock()
	sess.inflightName = name
	sess.inflightCancel = cancel
	if sess.cancelPending && (sess.pendingName == "" || sess.pendingName == name) {
		sess.cancelPending = false
		sess.pendingName = ""
		cancel()
	}
	sess.mu.Unlock()
	return ctx, cancel
}

// endAcquire clears the in-flight registration.
func (sess *session) endAcquire() {
	sess.mu.Lock()
	sess.inflightName = ""
	sess.inflightCancel = nil
	sess.mu.Unlock()
}

// cancelAcquire implements the cancel op's out-of-band side: abort the
// in-flight acquire if its name matches — whichever path it is on —
// otherwise remember the cancellation for the session's next acquire.
func (sess *session) cancelAcquire(name string) {
	sess.mu.Lock()
	switch {
	case sess.inflightCancel != nil && (name == "" || name == sess.inflightName):
		sess.inflightCancel()
	case sess.fastInflight && (name == "" || name == sess.inflightName):
		sess.fastCancelled = true
	default:
		sess.cancelPending = true
		sess.pendingName = name
	}
	sess.mu.Unlock()
}

// inbound is one parsed request line, or the error that ended the
// stream.
type inbound struct {
	req      Request
	parseErr error
}

// opQueue is the unbounded handoff between a session's reader and its
// processing loop (of request lines on the JSON path, of decoded ops on
// a binary stream). It must be unbounded: the reader can never be
// allowed to block on a full buffer, or a client that pipelines
// requests behind a blocked acquire and then drops its connection would
// park the reader mid-handoff — it would never return to Read, never
// observe the EOF, and the dead session's acquire would compete on as a
// ghost. Memory is bounded by what the client actually sends; the
// backing array is reused (a head cursor instead of re-slicing), so a
// steady-state session allocates nothing per item.
type opQueue[T any] struct {
	mu     sync.Mutex
	cond   *sync.Cond
	items  []T
	head   int
	closed bool
}

func newOpQueue[T any]() *opQueue[T] {
	q := &opQueue[T]{}
	q.cond = sync.NewCond(&q.mu)
	return q
}

// push appends an item. Never blocks.
func (q *opQueue[T]) push(in T) {
	q.mu.Lock()
	q.items = append(q.items, in)
	q.mu.Unlock()
	q.cond.Signal()
}

// pop removes the oldest item, blocking while the queue is empty and the
// stream still open. ok is false once the queue is drained and closed.
func (q *opQueue[T]) pop() (in T, ok bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	for q.head == len(q.items) && !q.closed {
		q.cond.Wait()
	}
	return q.popLocked()
}

// tryPop is pop without the blocking: ok is false whenever no item is
// ready right now (drained-and-closed included). The processing loop
// uses it to detect "no more pipelined work" and flush the write buffer
// before parking.
func (q *opQueue[T]) tryPop() (in T, ok bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.head == len(q.items) {
		var zero T
		return zero, false
	}
	return q.popLocked()
}

func (q *opQueue[T]) popLocked() (in T, ok bool) {
	var zero T
	if q.head == len(q.items) {
		return zero, false
	}
	in = q.items[q.head]
	q.items[q.head] = zero
	q.head++
	if q.head == len(q.items) {
		q.items = q.items[:0]
		q.head = 0
	}
	return in, true
}

// close marks the stream ended; pop drains the remainder then reports
// done.
func (q *opQueue[T]) close() {
	q.mu.Lock()
	q.closed = true
	q.mu.Unlock()
	q.cond.Broadcast()
}

// errLineTooLong ends a session whose client sent an oversized request
// line; unlike a scanner's silent stop, the client hears why.
var errLineTooLong = errors.New("request line exceeds the server's line limit")

// readLine reads one newline-terminated line using the reader's own
// buffer when the line fits (the common case: no copy, no allocation)
// and accumulating into scratch otherwise, up to max bytes.
func readLine(br *bufio.Reader, scratch []byte, max int) (line, newScratch []byte, err error) {
	line, err = br.ReadSlice('\n')
	if err == nil {
		if len(line)-1 > max {
			// The limit binds even below bufio's own buffer size.
			return nil, scratch, errLineTooLong
		}
		return line[:len(line)-1], scratch, nil
	}
	if err != bufio.ErrBufferFull {
		return nil, scratch, err
	}
	scratch = append(scratch[:0], line...)
	for {
		if len(scratch) > max {
			return nil, scratch, errLineTooLong
		}
		line, err = br.ReadSlice('\n')
		scratch = append(scratch, line...)
		switch err {
		case nil:
			if len(scratch)-1 > max {
				return nil, scratch, errLineTooLong
			}
			return scratch[:len(scratch)-1], scratch, nil
		case bufio.ErrBufferFull:
			// keep accumulating
		default:
			return nil, scratch, err
		}
	}
}

// serveConn dispatches one connection to its wire format. The first
// byte decides: BinaryMagic[0] selects the length-prefixed multiplexed
// framing, anything else — in particular the '{' every JSON request
// line starts with — selects newline-JSON, so old clients keep working
// with zero configuration. Whatever ends the connection, the deferred
// cleanup here unregisters it; each protocol handler releases its own
// sessions' grants before returning.
func (s *Server) serveConn(conn net.Conn) {
	defer func() {
		conn.Close()
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
		s.wg.Done()
	}()
	br := bufio.NewReader(conn)
	first, err := br.Peek(1)
	if err != nil {
		return // closed before the first byte; nothing was promised
	}
	if first[0] == BinaryMagic[0] {
		s.serveBinary(conn, br)
		return
	}
	s.serveJSON(conn, br)
}

// serveJSON runs one newline-JSON session: one logical session for the
// whole connection. A dedicated reader goroutine decodes request lines
// and feeds them to the processing loop, so the connection stays
// responsive while an acquire blocks: a cancel line aborts the
// in-flight acquire out of band (and still gets its response in order),
// and a connection drop cancels the whole session context, reaping any
// waiter the client abandoned. The processing loop batches responses:
// it flushes the write buffer only when the line queue is empty, so a
// pipelined burst costs one syscall, not one per response. Whatever ends
// the connection — client close, protocol error, cancel-by-Shutdown —
// the deferred cleanup releases every grant the session still holds.
func (s *Server) serveJSON(conn net.Conn, br *bufio.Reader) {
	sess := newSession()
	connCtx, connCancel := context.WithCancel(context.Background())
	s.liveStreams.Add(1)
	defer func() {
		connCancel()
		// Same single release codepath as the release op: with leases on,
		// a teardown that lost its grant's token arbitration to a TTL
		// expiry is a no-op, never a double release.
		for _, g := range sess.grants {
			s.releaseGrant(g)
		}
		s.liveStreams.Add(-1)
	}()

	maxLine := s.MaxLineBytes
	if maxLine <= 0 {
		maxLine = DefaultMaxLineBytes
	}

	lines := newOpQueue[inbound]()
	go func() {
		defer lines.close()
		// The reader owns the inbound half: when a read fails — client
		// disconnect, or conn.Close from Shutdown or a protocol error —
		// the session context is cancelled so a blocked acquire withdraws
		// instead of competing on behalf of a ghost. The queue's pushes
		// never block, so the reader is always back in Read and observes
		// the disconnect promptly no matter how many lines are pipelined
		// behind a blocked acquire.
		defer connCancel()
		names := newNameTable() // per-session lock-name interning (byte-bounded)
		var scratch []byte
		for {
			var line []byte
			var err error
			line, scratch, err = readLine(br, scratch, maxLine)
			if err != nil {
				if err == errLineTooLong {
					lines.push(inbound{parseErr: err})
				}
				return // disconnect (or the too-long protocol error above)
			}
			var in inbound
			if err := decodeRequest(line, &in.req, names); err != nil {
				lines.push(inbound{parseErr: err})
				return
			}
			if in.req.Op == OpCancel {
				sess.cancelAcquire(in.req.Name)
			}
			lines.push(in)
		}
	}()

	bw := bufio.NewWriter(conn)
	// flushPending pushes batched responses out just before an acquire
	// commits to blocking, so earlier responses in the same burst are not
	// held hostage by a contended lock.
	flushPending := func() { bw.Flush() }
	var respBuf []byte
	for {
		in, ok := lines.tryPop()
		if !ok {
			// No pipelined request is waiting: push the batched responses
			// out before parking on the queue.
			if bw.Flush() != nil {
				return
			}
			if in, ok = lines.pop(); !ok {
				return
			}
		}
		var resp Response
		if in.parseErr != nil {
			// The stream is unusable; answer once and hang up.
			resp = Response{Err: fmt.Sprintf("lockd: bad request: %v", in.parseErr)}
		} else {
			resp = s.handle(connCtx, sess, in.req, flushPending)
		}
		respBuf = AppendResponse(respBuf[:0], &resp)
		bw.Write(respBuf)
		if err := bw.WriteByte('\n'); err != nil {
			return
		}
		if in.parseErr != nil {
			bw.Flush()
			return
		}
	}
}

// acquireCtx derives the context governing one slow-path acquire from
// the session context, the request's timeout, and the server cap.
func (s *Server) acquireCtx(connCtx context.Context, req Request) (context.Context, context.CancelFunc) {
	timeout := time.Duration(req.TimeoutMS) * time.Millisecond
	if s.MaxWait > 0 && (timeout == 0 || timeout > s.MaxWait) {
		timeout = s.MaxWait
	}
	if timeout > 0 {
		return context.WithTimeout(connCtx, timeout)
	}
	return context.WithCancel(connCtx)
}

// handle executes one request against the session. preBlock, when
// non-nil, is called right before an acquire commits to the blocking
// slow path — the transport uses it to flush responses batched so far,
// keeping the fast path's batching while never letting a contended
// acquire delay answers already owed.
func (s *Server) handle(connCtx context.Context, sess *session, req Request, preBlock func()) Response {
	switch req.Op {
	case OpAcquire:
		if req.Name == "" {
			return needName(req.Op)
		}
		if req.TimeoutMS < 0 {
			return Response{Err: fmt.Sprintf("lockd: negative timeout_ms %d", req.TimeoutMS)}
		}
		if _, held := sess.grants[req.Name]; held {
			return alreadyHeld(req.Name)
		}
		// Fast path: no contexts, no timers, no allocation — consume a
		// remembered cancel, then take the lock manager's uncontended
		// probe. Only a lock that is actually busy pays the slow path.
		if sess.beginFastAcquire(req.Name) {
			return Response{OK: true, Aborted: true}
		}
		l, ok, err := s.mgr.AcquireFast(req.Name)
		cancelled := sess.endFastAcquire()
		if err != nil {
			return Response{Err: err.Error()}
		}
		if ok {
			// A cancel that raced in during the attempt lost, exactly as a
			// cancel observed after a slow-path acquisition completes.
			g := s.attachGrant(l)
			sess.grants[req.Name] = g
			return s.grantResponse(g)
		}
		if cancelled {
			return Response{OK: true, Aborted: true}
		}
		if preBlock != nil {
			preBlock()
		}
		base, baseCancel := s.acquireCtx(connCtx, req)
		defer baseCancel()
		ctx, cancel := sess.beginAcquire(base, req.Name)
		defer cancel()
		held, err := s.mgr.AcquireLeaseCtx(ctx, req.Name)
		sess.endAcquire()
		if err != nil {
			if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
				return Response{OK: true, Aborted: true}
			}
			return Response{Err: err.Error()}
		}
		g := s.attachGrant(held)
		sess.grants[req.Name] = g
		return s.grantResponse(g)
	case OpCancel:
		// The abort itself already happened out of band (or was
		// remembered) when the reader saw this line; this is just the
		// in-order acknowledgement.
		return Response{OK: true}
	case OpTryAcquire:
		if req.Name == "" {
			return needName(req.Op)
		}
		if _, held := sess.grants[req.Name]; held {
			return alreadyHeld(req.Name)
		}
		l, ok, err := s.mgr.TryAcquireLease(req.Name)
		if err != nil {
			return Response{Err: err.Error()}
		}
		if !ok {
			return Response{OK: true, Acquired: false}
		}
		g := s.attachGrant(l)
		sess.grants[req.Name] = g
		return s.grantResponse(g)
	case OpRelease:
		if req.Name == "" {
			return needName(req.Op)
		}
		g, held := sess.grants[req.Name]
		if !held {
			return Response{Err: fmt.Sprintf("lockd: session does not hold %q", req.Name)}
		}
		delete(sess.grants, req.Name)
		if err := s.releaseGrant(g); err != nil {
			if errors.Is(err, lease.ErrFenced) {
				return Response{Err: err.Error(), Fenced: true}
			}
			return Response{Err: err.Error()}
		}
		return Response{OK: true}
	case OpHolds:
		if req.Name == "" {
			return needName(req.Op)
		}
		g, held := sess.grants[req.Name]
		resp := Response{OK: true, Holds: held}
		if held && s.leases != nil {
			resp.Token = g.token
			if rem, ok := s.leases.Remaining(req.Name, g.token); ok {
				resp.TTLMS = ttlMillis(rem)
			} else {
				// The lease expired under the session: the grant is gone
				// and the token stale, exactly as any other fenced op.
				delete(sess.grants, req.Name)
				resp.Holds = false
				resp.Fenced = true
			}
		}
		return resp
	case OpHeartbeat:
		if s.leases == nil {
			// Leases off: an acknowledged no-op, so clients can always
			// send heartbeats unconditionally.
			return Response{OK: true}
		}
		if req.Name != "" {
			g, held := sess.grants[req.Name]
			if !held {
				return Response{Err: fmt.Sprintf("lockd: session does not hold %q", req.Name)}
			}
			ttl, err := s.leases.Heartbeat(req.Name, g.token)
			if err != nil {
				delete(sess.grants, req.Name)
				return Response{Err: err.Error(), Fenced: true}
			}
			return Response{OK: true, TTLMS: ttlMillis(ttl)}
		}
		// Bare heartbeat renews every grant the session holds, dropping
		// the ones whose leases already expired; Fenced flags that any
		// were dropped, TTLMS reports the tightest surviving deadline.
		var fenced bool
		var min time.Duration
		for name, g := range sess.grants {
			ttl, err := s.leases.Heartbeat(name, g.token)
			if err != nil {
				delete(sess.grants, name)
				fenced = true
				continue
			}
			if min == 0 || ttl < min {
				min = ttl
			}
		}
		return Response{OK: true, Fenced: fenced, TTLMS: ttlMillis(min)}
	case OpStats:
		c := s.mgr.Counters()
		st := &Stats{
			Acquires:      c.Acquires,
			Releases:      c.Releases,
			Waits:         c.Waits,
			TryAcquires:   c.TryAcquires,
			TryFailures:   c.TryFailures,
			LockCreates:   c.LockCreates,
			Evictions:     c.Evictions,
			ResidentLocks: c.ResidentLocks,
			Aborts:        c.Aborts,
			LeaseTimeouts: c.LeaseTimeouts,
			Violations:    s.mgr.Violations(),
			Sessions:      s.Sessions(),
			Streams:       int(s.liveStreams.Load()),
		}
		if s.leases != nil {
			lc := s.leases.Counters()
			st.Expired = lc.Expired
			st.Revoked = lc.Revoked
			st.FencedRejects = lc.FencedRejects
		}
		return Response{OK: true, Stats: st}
	case OpPing:
		return Response{OK: true}
	default:
		return Response{Err: fmt.Sprintf("lockd: unknown op %q", req.Op)}
	}
}

func needName(op string) Response {
	return Response{Err: fmt.Sprintf("lockd: %s needs a name", op)}
}

func alreadyHeld(name string) Response {
	return Response{Err: fmt.Sprintf("lockd: session already holds %q", name)}
}

// ttlMillis reports a remaining TTL in milliseconds, rounded up so a
// live lease never reads 0.
func ttlMillis(d time.Duration) int64 {
	if d <= 0 {
		return 0
	}
	return int64((d + time.Millisecond - 1) / time.Millisecond)
}
