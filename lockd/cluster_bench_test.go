package lockd_test

// Cluster round-trip benchmarks: the cost of one acquire+release cycle
// for a key owned by n0, measured three ways — direct (the client is
// already talking to the owner), redirect (the client asked the wrong
// node and must follow the redirect onto a fresh connection, the
// pre-proxy worst case for a cold ownership cache), and proxy (the
// wrong node forwards to the owner over the pooled inter-node
// transport). Proxy's budget is ≤ 1.5× direct — the forwarded acquire
// adds one loopback hop and the forwarded release is asynchronous —
// and it must beat redirect, which pays a dial plus the retried op.

import (
	"errors"
	"testing"
	"time"

	"anonmutex/lockd/client"
)

// benchAcquireRelease spins one acquire+release cycle per iteration on
// an established connection.
func benchAcquireRelease(b *testing.B, c *client.Conn, key string) {
	b.Helper()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ok, err := c.AcquireFor(key, time.Second)
		if err != nil || !ok {
			b.Fatalf("acquire: %v %v", ok, err)
		}
		if err := c.Release(key); err != nil {
			b.Fatalf("release: %v", err)
		}
	}
}

func BenchmarkClusterRoundTrip_Direct(b *testing.B) {
	nodes := startCluster(b, 2)
	key := keyOwnedBy(b, nodes, "n0")
	c, err := client.DialConn(nodes[0].addr)
	if err != nil {
		b.Fatal(err)
	}
	defer c.Close()
	benchAcquireRelease(b, c, key)
}

func BenchmarkClusterRoundTrip_Redirect(b *testing.B) {
	nodes := startCluster(b, 2)
	key := keyOwnedBy(b, nodes, "n0")
	wrong, err := client.DialConn(nodes[1].addr)
	if err != nil {
		b.Fatal(err)
	}
	defer wrong.Close()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// The cold-cache dance: ask the wrong node, get redirected, dial
		// the owner, redo the op there, release, hang up.
		_, err := wrong.AcquireFor(key, time.Second)
		var redir *client.RedirectError
		if !errors.As(err, &redir) {
			b.Fatalf("wrong node answered %v, want a redirect", err)
		}
		c, err := client.DialConn(redir.Owner)
		if err != nil {
			b.Fatal(err)
		}
		ok, err := c.AcquireFor(key, time.Second)
		if err != nil || !ok {
			b.Fatalf("redirected acquire: %v %v", ok, err)
		}
		if err := c.Release(key); err != nil {
			b.Fatal(err)
		}
		c.Close()
	}
}

func BenchmarkClusterRoundTrip_Proxy(b *testing.B) {
	nodes := startProxyCluster(b, 2)
	key := keyOwnedBy(b, nodes, "n0")
	c, err := client.DialConn(nodes[1].addr)
	if err != nil {
		b.Fatal(err)
	}
	defer c.Close()
	benchAcquireRelease(b, c, key)
}
