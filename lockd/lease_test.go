package lockd_test

// End-to-end coverage of the lease subsystem over the wire: fencing
// tokens on grants, heartbeat renewal, TTL expiry of silent holders,
// the stale-token rejection an expired holder sees on its next op, and
// the compatibility contracts that keep pre-lease clients working —
// plain JSON sessions and BinaryMagic (v1) sockets never see the lease
// fields. The teardown-vs-expiry race regression lives here too; run
// the package under -race to give it teeth.

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"sync"
	"testing"
	"time"

	"anonmutex/internal/lockmgr"
	"anonmutex/lockd"
	"anonmutex/lockd/client"
)

// startLeaseServer is startServer with leases on: grants carry fencing
// tokens and expire after ttl without a heartbeat.
func startLeaseServer(t *testing.T, ttl time.Duration) (*lockd.Server, *lockmgr.Manager, string) {
	t.Helper()
	mgr, err := lockmgr.New(lockmgr.Config{HandlesPerLock: 4})
	if err != nil {
		t.Fatal(err)
	}
	srv := lockd.NewServer(mgr)
	srv.LeaseTTL = ttl
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ln) }()
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			t.Errorf("Shutdown: %v", err)
		}
		if err := <-serveErr; err != nil {
			t.Errorf("Serve: %v", err)
		}
	})
	return srv, mgr, ln.Addr().String()
}

// TestLeaseExpiryFencesStaleHolder pins the acceptance contract end to
// end: a holder that stops heartbeating loses its grant one TTL later,
// a waiting contender gets the lock within 2×TTL, and the stale
// holder's next op is rejected through its fencing token.
func TestLeaseExpiryFencesStaleHolder(t *testing.T) {
	const ttl = 50 * time.Millisecond
	_, mgr, addr := startLeaseServer(t, ttl)
	holder, err := client.DialConn(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer holder.Close()
	if err := holder.Acquire("k"); err != nil {
		t.Fatal(err)
	}
	if err := holder.Acquire("k2"); err != nil {
		t.Fatal(err)
	}
	// The holder goes silent: no heartbeats, socket still open. A
	// second session's blocking acquire must complete within 2×TTL.
	successor, err := client.DialConn(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer successor.Close()
	start := time.Now()
	if err := successor.Acquire("k"); err != nil {
		t.Fatal(err)
	}
	if took := time.Since(start); took > 2*ttl {
		t.Errorf("orphan recovery took %v, want <= %v", took, 2*ttl)
	}
	// The expired holder's ops fence on its stale tokens: the explicit
	// release of k, and the bare heartbeat's renewal attempt on k2.
	if err := holder.Release("k"); !errors.Is(err, client.ErrFenced) {
		t.Errorf("stale release: %v, want ErrFenced", err)
	}
	if err := holder.Heartbeat(); !errors.Is(err, client.ErrFenced) {
		t.Errorf("stale heartbeat: %v, want ErrFenced", err)
	}
	if err := successor.Release("k"); err != nil {
		t.Fatal(err)
	}
	st, err := successor.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.Expired != 2 {
		t.Errorf("expired = %d, want 2 (both of the silent holder's grants)", st.Expired)
	}
	if st.FencedRejects < 1 {
		t.Errorf("fenced rejects = %d, want >= 1", st.FencedRejects)
	}
	if st.Violations != 0 || mgr.Violations() != 0 {
		t.Errorf("violations: wire=%d manager=%d", st.Violations, mgr.Violations())
	}
}

// TestClientAutoHeartbeat: the background ticker keeps a grant alive
// across many TTLs; pausing it past the TTL expires the lease, and the
// resumed holder's next op reports ErrFenced.
func TestClientAutoHeartbeat(t *testing.T) {
	const ttl = 60 * time.Millisecond
	_, _, addr := startLeaseServer(t, ttl)
	c, err := client.DialConn(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	c.AutoHeartbeat(ttl / 4)
	if err := c.Acquire("k"); err != nil {
		t.Fatal(err)
	}
	time.Sleep(3 * ttl)
	if held, err := c.Holds("k"); err != nil || !held {
		t.Fatalf("holds after 3 TTLs of auto-heartbeat: held=%v err=%v", held, err)
	}
	// Simulate a stalled client: heartbeats stop but the process (and
	// socket) stay alive. The lease expires; resuming the ticker does
	// not resurrect it, and the next lifecycle op is fenced.
	c.PauseHeartbeat()
	time.Sleep(3 * ttl)
	c.ResumeHeartbeat()
	if err := c.Release("k"); !errors.Is(err, client.ErrFenced) {
		t.Errorf("release after paused heartbeat: %v, want ErrFenced", err)
	}
}

// TestHoldsReportsTokenAndTTL drives a raw JSON session to see the new
// response fields the typed client hides: acquire returns a nonzero
// fencing token, and holds echoes the token with the remaining TTL.
func TestHoldsReportsTokenAndTTL(t *testing.T) {
	const ttl = 500 * time.Millisecond
	_, _, addr := startLeaseServer(t, ttl)
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	br := bufio.NewReader(conn)
	roundTrip := func(req lockd.Request) lockd.Response {
		t.Helper()
		line, err := json.Marshal(req)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := conn.Write(append(line, '\n')); err != nil {
			t.Fatal(err)
		}
		raw, err := br.ReadBytes('\n')
		if err != nil {
			t.Fatal(err)
		}
		var resp lockd.Response
		if err := json.Unmarshal(raw, &resp); err != nil {
			t.Fatal(err)
		}
		return resp
	}
	acq := roundTrip(lockd.Request{Op: lockd.OpAcquire, Name: "k"})
	if !acq.OK || !acq.Acquired || acq.Token == 0 {
		t.Fatalf("acquire = %+v, want OK with nonzero token", acq)
	}
	if acq.TTLMS <= 0 || acq.TTLMS > int64(ttl/time.Millisecond) {
		t.Errorf("acquire ttl_ms = %d, want in (0, %d]", acq.TTLMS, int64(ttl/time.Millisecond))
	}
	holds := roundTrip(lockd.Request{Op: lockd.OpHolds, Name: "k"})
	if !holds.OK || !holds.Holds || holds.Token != acq.Token {
		t.Fatalf("holds = %+v, want held with token %d", holds, acq.Token)
	}
	if holds.TTLMS <= 0 {
		t.Errorf("holds ttl_ms = %d, want positive remaining TTL", holds.TTLMS)
	}
	hb := roundTrip(lockd.Request{Op: lockd.OpHeartbeat, Name: "k"})
	if !hb.OK || hb.TTLMS <= 0 {
		t.Fatalf("heartbeat = %+v, want OK with renewed TTL", hb)
	}
	rel := roundTrip(lockd.Request{Op: lockd.OpRelease, Name: "k"})
	if !rel.OK {
		t.Fatalf("release = %+v", rel)
	}
}

// TestJSONOldClientCompat is the pre-lease JSON client against a
// lease-running server: a decoder that only knows the old response
// fields (modeled by a struct without them — encoding/json drops
// unknown keys, exactly what the old tolerant decoder did) completes a
// full session. The server's lease bookkeeping still protects the key;
// the old client simply cannot see the token.
func TestJSONOldClientCompat(t *testing.T) {
	_, _, addr := startLeaseServer(t, time.Second)
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	br := bufio.NewReader(conn)
	type oldResponse struct {
		OK       bool   `json:"ok"`
		Err      string `json:"err,omitempty"`
		Acquired bool   `json:"acquired,omitempty"`
		Holds    bool   `json:"holds,omitempty"`
	}
	roundTrip := func(op, name string) oldResponse {
		t.Helper()
		if _, err := fmt.Fprintf(conn, `{"op":%q,"name":%q}`+"\n", op, name); err != nil {
			t.Fatal(err)
		}
		raw, err := br.ReadBytes('\n')
		if err != nil {
			t.Fatal(err)
		}
		var resp oldResponse
		if err := json.Unmarshal(raw, &resp); err != nil {
			t.Fatalf("old-shape decode of %s: %v", raw, err)
		}
		return resp
	}
	if r := roundTrip(lockd.OpAcquire, "k"); !r.OK || !r.Acquired {
		t.Fatalf("old-client acquire = %+v", r)
	}
	if r := roundTrip(lockd.OpHolds, "k"); !r.OK || !r.Holds {
		t.Fatalf("old-client holds = %+v", r)
	}
	if r := roundTrip(lockd.OpRelease, "k"); !r.OK {
		t.Fatalf("old-client release = %+v", r)
	}
}

// TestBinaryV1ClientCompat speaks the legacy binary dialect — the
// BinaryMagic negotiation a pre-lease binary client sends — against a
// lease-running server. The server must pin the connection to the v1
// dialect: responses decode with DecodeResponseBinV1 (which rejects
// the lease flag bits as unknown, so any leakage fails loudly) and
// stats carry the original 13-field sequence.
func TestBinaryV1ClientCompat(t *testing.T) {
	_, _, addr := startLeaseServer(t, time.Second)
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if _, err := conn.Write(lockd.BinaryMagic[:]); err != nil {
		t.Fatal(err)
	}
	br := bufio.NewReader(conn)
	var buf []byte
	roundTrip := func(req lockd.Request) lockd.Response {
		t.Helper()
		frame := lockd.BeginFrame(nil, 1)
		frame, err := lockd.AppendRequestBin(frame, &req)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := conn.Write(lockd.EndFrame(frame, 0)); err != nil {
			t.Fatal(err)
		}
		stream, ops, newBuf, err := lockd.ReadFrame(br, buf, 0)
		if err != nil {
			t.Fatal(err)
		}
		buf = newBuf
		if stream != 1 {
			t.Fatalf("response on stream %d, want 1", stream)
		}
		var resp lockd.Response
		rest, err := lockd.DecodeResponseBinV1(ops, &resp)
		if err != nil {
			t.Fatalf("v1 decode: %v", err)
		}
		if len(rest) != 0 {
			t.Fatalf("v1 decode left %d trailing bytes", len(rest))
		}
		return resp
	}
	if r := roundTrip(lockd.Request{Op: lockd.OpAcquire, Name: "k"}); !r.OK || !r.Acquired {
		t.Fatalf("v1 acquire = %+v", r)
	}
	if r := roundTrip(lockd.Request{Op: lockd.OpHolds, Name: "k"}); !r.OK || !r.Holds {
		t.Fatalf("v1 holds = %+v", r)
	}
	r := roundTrip(lockd.Request{Op: lockd.OpStats})
	if !r.OK || r.Stats == nil || r.Stats.Acquires != 1 {
		t.Fatalf("v1 stats = %+v", r)
	}
	if r := roundTrip(lockd.Request{Op: lockd.OpRelease, Name: "k"}); !r.OK {
		t.Fatalf("v1 release = %+v", r)
	}
}

// TestTeardownRacesExpiry is the double-release regression test: a
// binary connection dies holding a grant at the same moment the TTL
// expires it. Teardown and the expiry goroutine route through one
// revocation path arbitrated by the fencing token, so exactly one side
// frees the lock — never both. Any double release corrupts the lease
// pool's free list or the handle refcount, which the post-run acquire
// sweep and the violation counters would catch; -race covers the rest.
func TestTeardownRacesExpiry(t *testing.T) {
	const ttl = 10 * time.Millisecond
	_, mgr, addr := startLeaseServer(t, ttl)
	const iters = 40
	for i := 0; i < iters; i++ {
		m, err := client.DialMux(addr)
		if err != nil {
			t.Fatal(err)
		}
		st, err := m.Open()
		if err != nil {
			t.Fatal(err)
		}
		name := fmt.Sprintf("k%d", i%4)
		if err := st.Acquire(name); err != nil {
			t.Fatalf("iter %d: %v", i, err)
		}
		// Drop the socket right at the TTL boundary so connection
		// teardown and lease expiry race for the same token.
		time.Sleep(ttl)
		m.Close()
	}
	// Every key must be acquirable again within the recovery bound.
	var wg sync.WaitGroup
	for k := 0; k < 4; k++ {
		wg.Add(1)
		go func(k int) {
			defer wg.Done()
			c, err := client.DialConn(addr)
			if err != nil {
				t.Error(err)
				return
			}
			defer c.Close()
			name := fmt.Sprintf("k%d", k)
			ok, err := c.AcquireFor(name, 2*ttl+time.Second)
			if err != nil || !ok {
				t.Errorf("post-race acquire of %s: ok=%v err=%v", name, ok, err)
				return
			}
			if err := c.Release(name); err != nil {
				t.Errorf("post-race release of %s: %v", name, err)
			}
		}(k)
	}
	wg.Wait()
	if v := mgr.Violations(); v != 0 {
		t.Fatalf("%d violations after teardown/expiry races", v)
	}
}

// TestEndStreamSharesRevocationPath: end_stream on a stream holding a
// grant releases through the same token arbitration as expiry — the
// counters must show a clean voluntary release, not a revocation, and
// a sibling stream on the same socket is untouched.
func TestEndStreamSharesRevocationPath(t *testing.T) {
	_, _, addr := startLeaseServer(t, time.Second)
	m, err := client.DialMux(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	a, err := m.Open()
	if err != nil {
		t.Fatal(err)
	}
	b, err := m.Open()
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Acquire("ka"); err != nil {
		t.Fatal(err)
	}
	if err := b.Acquire("kb"); err != nil {
		t.Fatal(err)
	}
	if err := a.Close(); err != nil { // end_stream with a live grant
		t.Fatal(err)
	}
	// The sibling stream still works and still holds its grant.
	if held, err := b.Holds("kb"); err != nil || !held {
		t.Fatalf("sibling holds after end_stream: held=%v err=%v", held, err)
	}
	st, err := b.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.Releases != 1 {
		t.Errorf("releases = %d, want 1 (end_stream frees via the release path)", st.Releases)
	}
	if st.Expired != 0 || st.Revoked != 0 {
		t.Errorf("expired=%d revoked=%d after clean end_stream, want 0, 0", st.Expired, st.Revoked)
	}
	if err := b.Release("kb"); err != nil {
		t.Fatal(err)
	}
}
