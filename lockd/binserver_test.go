package lockd_test

// End-to-end coverage of the binary multiplexed transport: negotiation
// (binary magic vs the JSON fallback old clients speak), stream
// independence (a blocked or cancelled stream must not desync its
// siblings), the stream lifecycle (end_stream releases grants without
// killing the socket; a dropped socket reaps every stream), and the
// frame-limit protocol error contract on stream 0.

import (
	"bufio"
	"encoding/binary"
	"errors"
	"io"
	"net"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"anonmutex/internal/lockmgr"
	"anonmutex/lockd"
	"anonmutex/lockd/client"
)

func dialMux(t *testing.T, addr string) *client.Mux {
	t.Helper()
	m, err := client.DialMux(addr)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { m.Close() })
	return m
}

func openStream(t *testing.T, m *client.Mux) *client.Conn {
	t.Helper()
	c, err := m.Open()
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// TestMuxSessionLifecycle is TestSessionLifecycle over one stream of a
// multiplexed binary connection: the whole client API must behave
// identically on either transport.
func TestMuxSessionLifecycle(t *testing.T) {
	_, _, addr := startServer(t, lockmgr.Config{HandlesPerLock: 2})
	m := dialMux(t, addr)
	c := openStream(t, m)

	if err := c.Ping(); err != nil {
		t.Fatal(err)
	}
	if held, err := c.Holds("k"); err != nil || held {
		t.Fatalf("Holds before acquire: held=%v err=%v", held, err)
	}
	if err := c.Acquire("k"); err != nil {
		t.Fatal(err)
	}
	if held, err := c.Holds("k"); err != nil || !held {
		t.Fatalf("Holds inside critical section: held=%v err=%v", held, err)
	}
	if err := c.Acquire("k"); err == nil {
		t.Error("re-acquiring a held name in one session succeeded")
	}
	if err := c.Release("k"); err != nil {
		t.Fatal(err)
	}
	if err := c.Release("k"); err == nil {
		t.Error("releasing an unheld name succeeded")
	}
	st, err := c.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.Acquires != 1 || st.Releases != 1 || st.Violations != 0 || st.Sessions != 1 {
		t.Errorf("stats = %+v", st)
	}
	if st.Streams != 1 {
		t.Errorf("Streams = %d, want 1 (one open stream)", st.Streams)
	}
}

// TestMuxStreamsAreIndependentSessions: two streams of one socket are
// distinct lock-protocol sessions — one can hold what the other then
// fails to try, and holds answers per stream.
func TestMuxStreamsAreIndependentSessions(t *testing.T) {
	_, _, addr := startServer(t, lockmgr.Config{HandlesPerLock: 2})
	m := dialMux(t, addr)
	a := openStream(t, m)
	b := openStream(t, m)

	if err := a.Acquire("k"); err != nil {
		t.Fatal(err)
	}
	if ok, err := b.TryAcquire("k"); err != nil || ok {
		t.Fatalf("sibling stream try of a held lock: ok=%v err=%v", ok, err)
	}
	if held, err := b.Holds("k"); err != nil || held {
		t.Fatalf("sibling stream holds: held=%v err=%v", held, err)
	}
	if err := a.Release("k"); err != nil {
		t.Fatal(err)
	}
	if ok, err := b.TryAcquire("k"); err != nil || !ok {
		t.Fatalf("try after sibling release: ok=%v err=%v", ok, err)
	}
	if err := b.Release("k"); err != nil {
		t.Fatal(err)
	}
}

// TestMuxBlockedStreamDoesNotStallSiblings: an acquire blocked on one
// stream must not delay any sibling on the same socket (per-stream
// server goroutines, not per-connection).
func TestMuxBlockedStreamDoesNotStallSiblings(t *testing.T) {
	_, _, addr := startServer(t, lockmgr.Config{HandlesPerLock: 2})
	m := dialMux(t, addr)
	a := openStream(t, m)
	b := openStream(t, m)

	if err := a.Acquire("hot"); err != nil {
		t.Fatal(err)
	}
	blocked := make(chan error, 1)
	go func() { blocked <- b.Acquire("hot") }() // parks behind a
	time.Sleep(20 * time.Millisecond)
	// Sibling traffic on a fresh stream must flow while b is parked.
	c := openStream(t, m)
	done := make(chan error, 1)
	go func() {
		for i := 0; i < 50; i++ {
			if err := c.Ping(); err != nil {
				done <- err
				return
			}
		}
		done <- nil
	}()
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("sibling stream stalled behind a blocked acquire")
	}
	if err := a.Release("hot"); err != nil {
		t.Fatal(err)
	}
	if err := <-blocked; err != nil {
		t.Fatal(err)
	}
	if err := b.Release("hot"); err != nil {
		t.Fatal(err)
	}
}

// TestMuxCancelDoesNotDesyncSiblings is the regression test for the
// Cancel+mux interaction: a mid-pipeline cancel on one stream must
// neither lose nor misroute responses on sibling streams sharing the
// socket. Run under -race it also exercises the demux bookkeeping.
func TestMuxCancelDoesNotDesyncSiblings(t *testing.T) {
	_, mgr, addr := startServer(t, lockmgr.Config{HandlesPerLock: 2})
	m := dialMux(t, addr)

	holder := openStream(t, m)
	if err := holder.Acquire("hot"); err != nil {
		t.Fatal(err)
	}

	const siblings = 4
	const rounds = 25
	var wg sync.WaitGroup
	// Sibling streams run an independent acquire/release workload on
	// their own names throughout the cancel churn.
	for i := 0; i < siblings; i++ {
		c := openStream(t, m)
		name := "sib-" + string(rune('a'+i))
		wg.Add(1)
		go func() {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				if err := c.Acquire(name); err != nil {
					t.Error(err)
					return
				}
				if held, err := c.Holds(name); err != nil || !held {
					t.Errorf("holds: held=%v err=%v", held, err)
					return
				}
				if err := c.Release(name); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	// The cancelling stream repeatedly pipelines a blocked acquire with
	// a chasing cancel — the mid-pipeline cancel of the regression.
	canceller := openStream(t, m)
	wg.Add(1)
	go func() {
		defer wg.Done()
		for r := 0; r < rounds; r++ {
			got := make(chan error, 1)
			go func() { got <- canceller.Acquire("hot") }()
			if err := canceller.Cancel("hot"); err != nil {
				t.Error(err)
				return
			}
			if err := <-got; err != nil && !errors.Is(err, client.ErrAborted) {
				t.Errorf("cancelled acquire: %v", err)
				return
			}
		}
	}()
	wg.Wait()
	if err := holder.Release("hot"); err != nil {
		t.Fatal(err)
	}
	if v := mgr.Violations(); v != 0 {
		t.Fatalf("%d violations", v)
	}
}

// TestMuxStreamCloseReleasesGrants: Close on one stream releases its
// grants server-side and leaves the socket serving its siblings.
func TestMuxStreamCloseReleasesGrants(t *testing.T) {
	_, _, addr := startServer(t, lockmgr.Config{HandlesPerLock: 2})
	m := dialMux(t, addr)
	a := openStream(t, m)
	b := openStream(t, m)

	if err := a.Acquire("k"); err != nil {
		t.Fatal(err)
	}
	if err := a.Close(); err != nil { // end_stream: grants released, acked
		t.Fatal(err)
	}
	if err := a.Ping(); err == nil {
		t.Error("request on a closed stream succeeded")
	}
	if err := b.Acquire("k"); err != nil { // blocks until the close freed it
		t.Fatal(err)
	}
	if err := b.Release("k"); err != nil {
		t.Fatal(err)
	}
	st, err := b.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.Sessions != 1 || st.Streams != 1 {
		t.Errorf("after stream close: Sessions=%d Streams=%d, want 1/1", st.Sessions, st.Streams)
	}
}

// TestMuxDisconnectReleasesAllStreams drops the socket with several
// streams mid-hold: every stream's grants must be reaped.
func TestMuxDisconnectReleasesAllStreams(t *testing.T) {
	_, mgr, addr := startServer(t, lockmgr.Config{HandlesPerLock: 2})
	m := dialMux(t, addr)
	names := []string{"k1", "k2", "k3"}
	for _, name := range names {
		c := openStream(t, m)
		if err := c.Acquire(name); err != nil {
			t.Fatal(err)
		}
	}
	if err := m.Close(); err != nil { // vanish without releasing anything
		t.Fatal(err)
	}
	b, err := client.DialConn(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	for _, name := range names {
		if err := b.Acquire(name); err != nil { // blocks until cleanup frees it
			t.Fatal(err)
		}
		if err := b.Release(name); err != nil {
			t.Fatal(err)
		}
	}
	if v := mgr.Violations(); v != 0 {
		t.Fatalf("%d violations", v)
	}
}

// TestMuxMutualExclusion contends many streams of one socket for one
// name with the client-side owner token and in-CS holds check.
func TestMuxMutualExclusion(t *testing.T) {
	_, mgr, addr := startServer(t, lockmgr.Config{HandlesPerLock: 2})
	m := dialMux(t, addr)
	const streams = 4
	const cycles = 10
	var owner atomic.Int64
	var violations atomic.Int64
	var wg sync.WaitGroup
	for i := 1; i <= streams; i++ {
		c := openStream(t, m)
		wg.Add(1)
		go func(me int64) {
			defer wg.Done()
			for s := 0; s < cycles; s++ {
				if err := c.Acquire("hot"); err != nil {
					t.Error(err)
					return
				}
				if !owner.CompareAndSwap(0, me) {
					violations.Add(1)
				}
				if held, err := c.Holds("hot"); err != nil || !held {
					t.Errorf("in-CS holds check: held=%v err=%v", held, err)
				}
				if !owner.CompareAndSwap(me, 0) {
					violations.Add(1)
				}
				if err := c.Release("hot"); err != nil {
					t.Error(err)
					return
				}
			}
		}(int64(i))
	}
	wg.Wait()
	if v := violations.Load(); v != 0 {
		t.Fatalf("%d client-observed violations", v)
	}
	if v := mgr.Violations(); v != 0 {
		t.Fatalf("%d manager-observed violations", v)
	}
}

// TestMuxBatch: a batched acquire+holds+release costs one frame and
// comes back as matched in-order responses.
func TestMuxBatch(t *testing.T) {
	_, _, addr := startServer(t, lockmgr.Config{HandlesPerLock: 2})
	m := dialMux(t, addr)
	c := openStream(t, m)
	reqs := []lockd.Request{
		{Op: lockd.OpAcquire, Name: "k"},
		{Op: lockd.OpHolds, Name: "k"},
		{Op: lockd.OpRelease, Name: "k"},
	}
	resps := make([]lockd.Response, len(reqs))
	if err := c.Batch(reqs, resps); err != nil {
		t.Fatal(err)
	}
	if !resps[0].Acquired || !resps[1].Holds || !resps[2].OK {
		t.Errorf("batch responses = %+v", resps)
	}
}

// TestJSONFallbackOldClient verifies negotiation end to end: a
// pre-binary client — raw newline-JSON, no magic — must be served
// unchanged by a binary-capable server.
func TestJSONFallbackOldClient(t *testing.T) {
	_, _, addr := startServer(t, lockmgr.Config{HandlesPerLock: 2})
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	br := bufio.NewReader(conn)
	roundTrip := func(line string) lockd.Response {
		t.Helper()
		if _, err := conn.Write([]byte(line + "\n")); err != nil {
			t.Fatal(err)
		}
		raw, err := br.ReadBytes('\n')
		if err != nil {
			t.Fatal(err)
		}
		var resp lockd.Response
		if err := lockd.DecodeResponse(raw[:len(raw)-1], &resp); err != nil {
			t.Fatalf("unparseable response %q: %v", raw, err)
		}
		return resp
	}
	if resp := roundTrip(`{"op":"acquire","name":"k"}`); !resp.Acquired {
		t.Fatalf("acquire: %+v", resp)
	}
	if resp := roundTrip(`{"op":"release","name":"k"}`); !resp.OK {
		t.Fatalf("release: %+v", resp)
	}
	if resp := roundTrip(`{"op":"ping"}`); !resp.OK {
		t.Fatalf("ping: %+v", resp)
	}
}

// TestBinaryProtocolErrors exercises the frame-level error contract: the
// server answers exactly once, on the reserved stream 0, then hangs up —
// the binary mirror of the JSON oversized-line contract.
func TestBinaryProtocolErrors(t *testing.T) {
	readStream0Err := func(t *testing.T, conn net.Conn) string {
		t.Helper()
		br := bufio.NewReader(conn)
		stream, ops, _, err := lockd.ReadFrame(br, nil, 0)
		if err != nil {
			t.Fatalf("reading error frame: %v", err)
		}
		if stream != 0 {
			t.Fatalf("error frame on stream %d, want 0", stream)
		}
		var resp lockd.Response
		if _, err := lockd.DecodeResponseBin(ops, &resp); err != nil {
			t.Fatalf("decoding error frame: %v", err)
		}
		if resp.OK || resp.Err == "" {
			t.Fatalf("error frame = %+v", resp)
		}
		// Exactly once, then hang up: the next read must be EOF.
		if _, err := br.ReadByte(); err != io.EOF {
			t.Errorf("after the error frame: %v, want EOF", err)
		}
		return resp.Err
	}

	t.Run("oversized frame", func(t *testing.T) {
		srv, mgr, err := newBinServer(16) // tiny frame limit
		if err != nil {
			t.Fatal(err)
		}
		defer mgr.Close()
		conn := dialBin(t, srv)
		hdr := make([]byte, 8)
		binary.LittleEndian.PutUint32(hdr, 1<<16) // way past the limit
		binary.LittleEndian.PutUint32(hdr[4:], 1)
		if _, err := conn.Write(hdr); err != nil {
			t.Fatal(err)
		}
		if msg := readStream0Err(t, conn); !strings.Contains(msg, "frame limit") {
			t.Errorf("err = %q", msg)
		}
	})
	t.Run("reserved stream 0", func(t *testing.T) {
		srv, mgr, err := newBinServer(0)
		if err != nil {
			t.Fatal(err)
		}
		defer mgr.Close()
		conn := dialBin(t, srv)
		frame := lockd.BeginFrame(nil, 0)
		frame, _ = lockd.AppendRequestBin(frame, &lockd.Request{Op: lockd.OpPing})
		if _, err := conn.Write(lockd.EndFrame(frame, 0)); err != nil {
			t.Fatal(err)
		}
		if msg := readStream0Err(t, conn); !strings.Contains(msg, "reserved") {
			t.Errorf("err = %q", msg)
		}
	})
	t.Run("unknown opcode", func(t *testing.T) {
		srv, mgr, err := newBinServer(0)
		if err != nil {
			t.Fatal(err)
		}
		defer mgr.Close()
		conn := dialBin(t, srv)
		frame := lockd.BeginFrame(nil, 1)
		frame = append(frame, 0xEE) // no such opcode
		if _, err := conn.Write(lockd.EndFrame(frame, 0)); err != nil {
			t.Fatal(err)
		}
		if msg := readStream0Err(t, conn); !strings.Contains(msg, "bad request") {
			t.Errorf("err = %q", msg)
		}
	})
	t.Run("bad magic", func(t *testing.T) {
		srv, mgr, err := newBinServer(0)
		if err != nil {
			t.Fatal(err)
		}
		defer mgr.Close()
		conn := dialBin(t, srv)
		if msg := readStream0Err(t, conn); !strings.Contains(msg, "magic") {
			t.Errorf("err = %q", msg)
		}
	})
}

// binServer is a server with a configurable frame limit on a loopback
// listener, for raw-wire tests.
type binServer struct {
	addr     string
	shutdown func()
}

func newBinServer(maxFrame int) (*binServer, *lockmgr.Manager, error) {
	mgr, err := lockmgr.New(lockmgr.Config{HandlesPerLock: 2})
	if err != nil {
		return nil, nil, err
	}
	srv := lockd.NewServer(mgr)
	srv.MaxFrameBytes = maxFrame
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		mgr.Close()
		return nil, nil, err
	}
	go srv.Serve(ln)
	return &binServer{addr: ln.Addr().String(), shutdown: func() { ln.Close() }}, mgr, nil
}

// dialBin dials the raw socket and sends the binary magic — except for
// the "bad magic" case, which sends a corrupted preamble.
func dialBin(t *testing.T, srv *binServer) net.Conn {
	t.Helper()
	conn, err := net.Dial("tcp", srv.addr)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { conn.Close(); srv.shutdown() })
	magic := lockd.BinaryMagic
	if t.Name() == "TestBinaryProtocolErrors/bad_magic" {
		magic[1] = 'X'
	}
	if _, err := conn.Write(magic[:]); err != nil {
		t.Fatal(err)
	}
	return conn
}
