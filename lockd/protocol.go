// Package lockd implements a small network lock service over the
// internal/lockmgr sharded named-lock manager. Two wire formats carry
// the same protocol: newline-delimited JSON (one logical session per
// connection — the zero-config default every old client speaks) and a
// length-prefixed binary framing that multiplexes many logical streams
// over one connection and batches ops per frame (see frame.go; a client
// opts in by leading with BinaryMagic, anything else is served as
// JSON). Either way, every grant a logical session holds is released
// automatically when the session ends.
//
// The protocol is deliberately minimal. Each request line is a Request;
// each response line is a Response, and responses are written in request
// order (per stream, on the binary transport). Operations:
//
//	acquire  block until the session holds the named lock; with
//	         timeout_ms set, give up after that many milliseconds —
//	         the waiter withdraws from the register competition and
//	         the response carries acquired=false, aborted=true
//	cancel   abort the session's in-flight acquire (optionally only if
//	         it is for the given name); if no acquire is in flight the
//	         cancellation is remembered and applied to the session's
//	         next acquire, closing the pipelining race between an
//	         acquire line and its chasing cancel line
//	try      acquire only if immediately available (Acquired reports it)
//	release  give a held lock back
//	holds    report whether this session holds the named lock — the
//	         owner check load generators issue inside the critical
//	         section; with leases enabled the response carries the
//	         grant's fencing token and remaining TTL
//	heartbeat
//	         renew the session's leases: with a name, just that grant;
//	         without, every grant the session holds. On a server with
//	         leases enabled (-lease-ttl), a grant whose holder stops
//	         heartbeating is forcibly revoked after one TTL and later
//	         ops on it are rejected with fenced=true — the stale
//	         holder's fencing token no longer matches. With leases
//	         disabled heartbeat is an acknowledged no-op, so clients
//	         can always send it
//	stats    manager-wide counters, including the mutual-exclusion
//	         violation cross-check and the abort/timeout tallies
//	ping     liveness probe
//
// A connection that drops mid-acquire is reaped: the server cancels the
// in-flight acquisition, the waiter leaves the lease queue or withdraws
// from the registers, and every grant the session held is released.
//
// Sessions are non-reentrant: acquiring a name the session already holds
// is an error, as is releasing one it does not hold. See lockd/client for
// the Go client (which pipelines requests, so Cancel can chase a blocked
// Acquire on the same session).
package lockd

// Operation names of the wire protocol.
const (
	OpAcquire    = "acquire"
	OpTryAcquire = "try"
	OpRelease    = "release"
	OpCancel     = "cancel"
	OpHolds      = "holds"
	OpHeartbeat  = "heartbeat"
	OpStats      = "stats"
	OpPing       = "ping"
)

// Request is one client request line.
type Request struct {
	// Op is one of the Op* constants.
	Op string `json:"op"`
	// Name is the lock name (required for acquire, try, release, holds;
	// optional for cancel, which then aborts any in-flight acquire).
	Name string `json:"name,omitempty"`
	// TimeoutMS bounds an acquire: after this many milliseconds the
	// waiter gives up cleanly and the response reports aborted. 0 means
	// wait forever (subject to the server's -max-wait cap, if any).
	TimeoutMS int64 `json:"timeout_ms,omitempty"`
}

// Response is one server response line.
type Response struct {
	// OK reports whether the request succeeded; on failure Err explains.
	// An aborted acquire is a success (OK with Aborted set): the protocol
	// worked exactly as asked.
	OK  bool   `json:"ok"`
	Err string `json:"err,omitempty"`
	// Acquired answers acquire and try: whether the lock is now held by
	// the session.
	Acquired bool `json:"acquired,omitempty"`
	// Aborted answers acquire: the attempt was abandoned (timeout, cancel
	// op, or server cap) after withdrawing cleanly; the lock is not held.
	Aborted bool `json:"aborted,omitempty"`
	// Holds answers holds.
	Holds bool `json:"holds,omitempty"`
	// Token is the grant's fencing token, stamped on every acquire and
	// echoed by holds when the server runs leases. Tokens are strictly
	// increasing per key, so a token smaller than the key's latest is
	// provably stale. 0 when leases are disabled.
	Token uint64 `json:"token,omitempty"`
	// TTLMS is the grant's remaining lease TTL in milliseconds (holds
	// and heartbeat; rounded up, so a live lease never reads 0).
	TTLMS int64 `json:"ttl_ms,omitempty"`
	// Fenced marks a request rejected (or, on heartbeat, partially
	// ignored) because the grant's lease expired or was revoked: the
	// session's fencing token is stale and the lock may already be held
	// by a successor.
	Fenced bool `json:"fenced,omitempty"`
	// Stats answers stats.
	Stats *Stats `json:"stats,omitempty"`
}

// Stats is the manager-wide counter snapshot served by the stats op.
type Stats struct {
	Acquires      uint64 `json:"acquires"`
	Releases      uint64 `json:"releases"`
	Waits         uint64 `json:"waits"`
	TryAcquires   uint64 `json:"try_acquires"`
	TryFailures   uint64 `json:"try_failures"`
	LockCreates   uint64 `json:"lock_creates"`
	Evictions     uint64 `json:"evictions"`
	ResidentLocks int    `json:"resident_locks"`
	// Aborts counts acquirers that withdrew from the register competition
	// (deadline, cancel, or connection drop); LeaseTimeouts counts those
	// whose context ended while still queued for a process handle.
	Aborts        uint64 `json:"aborts"`
	LeaseTimeouts uint64 `json:"lease_timeouts"`
	// Expired counts grants forcibly revoked because their holder
	// stopped heartbeating past the lease TTL; Revoked counts explicit
	// and shutdown-time revocations; FencedRejects counts ops rejected
	// for a stale fencing token. All 0 with leases disabled.
	Expired       uint64 `json:"expired"`
	Revoked       uint64 `json:"revoked"`
	FencedRejects uint64 `json:"fenced_rejects"`
	// Violations is the manager's holder cross-check: it must stay 0.
	Violations uint64 `json:"violations"`
	// Sessions is the number of live connections.
	Sessions int `json:"sessions"`
	// Streams is the number of live logical sessions: every JSON
	// connection counts one, and every open stream of a multiplexed
	// binary connection counts one — Streams/Sessions is the socket
	// amortization the binary transport buys.
	Streams int `json:"streams,omitempty"`
}
