// Package lockd implements a small network lock service over the
// internal/lockmgr sharded named-lock manager. Two wire formats carry
// the same protocol: newline-delimited JSON (one logical session per
// connection — the zero-config default every old client speaks) and a
// length-prefixed binary framing that multiplexes many logical streams
// over one connection and batches ops per frame (see frame.go; a client
// opts in by leading with BinaryMagic, anything else is served as
// JSON). Either way, every grant a logical session holds is released
// automatically when the session ends.
//
// The protocol is deliberately minimal. Each request line is a Request;
// each response line is a Response, and responses are written in request
// order (per stream, on the binary transport). Operations:
//
//	acquire  block until the session holds the named lock; with
//	         timeout_ms set, give up after that many milliseconds —
//	         the waiter withdraws from the register competition and
//	         the response carries acquired=false, aborted=true
//	cancel   abort the session's in-flight acquire (optionally only if
//	         it is for the given name); if no acquire is in flight the
//	         cancellation is remembered and applied to the session's
//	         next acquire, closing the pipelining race between an
//	         acquire line and its chasing cancel line
//	try      acquire only if immediately available (Acquired reports it)
//	release  give a held lock back
//	holds    report whether this session holds the named lock — the
//	         owner check load generators issue inside the critical
//	         section; with leases enabled the response carries the
//	         grant's fencing token and remaining TTL
//	heartbeat
//	         renew the session's leases: with a name, just that grant;
//	         without, every grant the session holds. On a server with
//	         leases enabled (-lease-ttl), a grant whose holder stops
//	         heartbeating is forcibly revoked after one TTL and later
//	         ops on it are rejected with fenced=true — the stale
//	         holder's fencing token no longer matches. With leases
//	         disabled heartbeat is an acknowledged no-op, so clients
//	         can always send it
//	stats    manager-wide counters, including the mutual-exclusion
//	         violation cross-check and the abort/timeout tallies
//	ping     liveness probe
//
// On a clustered server (see internal/cluster), each key is owned by
// exactly one node under rendezvous hashing of the membership view.
// Key ops sent to the wrong node are refused with wrong_owner=true
// plus the owning node's address and the membership epoch, so a
// routing client can follow the redirect and invalidate stale cache
// entries. Single-node servers never emit the field, and old clients —
// which skip unknown JSON fields, or whose binary dialect predates the
// redirect flag — see a plain error: a clean failure, never a silent
// success on the wrong node.
//
// A connection that drops mid-acquire is reaped: the server cancels the
// in-flight acquisition, the waiter leaves the lease queue or withdraws
// from the registers, and every grant the session held is released.
//
// Sessions are non-reentrant: acquiring a name the session already holds
// is an error, as is releasing one it does not hold. See lockd/client for
// the Go client (which pipelines requests, so Cancel can chase a blocked
// Acquire on the same session).
//
// The protocol's vocabulary — op names, Request/Response/Stats shapes,
// binary opcode and flag tables — is defined once in lockd/wire and
// consumed by both codecs; this package re-exports the names so
// existing importers keep compiling.
package lockd

import "anonmutex/lockd/wire"

// Operation names of the wire protocol (defined in lockd/wire).
const (
	OpAcquire    = wire.OpAcquire
	OpTryAcquire = wire.OpTryAcquire
	OpRelease    = wire.OpRelease
	OpCancel     = wire.OpCancel
	OpHolds      = wire.OpHolds
	OpHeartbeat  = wire.OpHeartbeat
	OpStats      = wire.OpStats
	OpPing       = wire.OpPing
	// OpReleaseNoAck is a fire-and-forget release: the server performs
	// it and answers nothing, so the sender must not wait for (or
	// FIFO-match) a response. The proxy uses it to retire forwarded
	// grants without an inter-node round trip.
	OpReleaseNoAck = wire.OpReleaseNoAck
)

// Request is one client request line. Alias of wire.Request.
type Request = wire.Request

// Response is one server response line. Alias of wire.Response.
type Response = wire.Response

// Stats is the manager-wide counter snapshot served by the stats op.
// Alias of wire.Stats.
type Stats = wire.Stats
