// Package lockd implements a small network lock service over the
// internal/lockmgr sharded named-lock manager: newline-delimited JSON
// requests over TCP, one session per connection, with every grant a
// session holds released automatically when the connection ends.
//
// The protocol is deliberately minimal. Each request line is a Request;
// each response line is a Response. Operations:
//
//	acquire  block until the session holds the named lock
//	try      acquire only if immediately available (Acquired reports it)
//	release  give a held lock back
//	holds    report whether this session holds the named lock — the
//	         owner check load generators issue inside the critical section
//	stats    manager-wide counters, including the mutual-exclusion
//	         violation cross-check
//	ping     liveness probe
//
// Sessions are non-reentrant: acquiring a name the session already holds
// is an error, as is releasing one it does not hold. See lockd/client for
// the Go client.
package lockd

// Operation names of the wire protocol.
const (
	OpAcquire    = "acquire"
	OpTryAcquire = "try"
	OpRelease    = "release"
	OpHolds      = "holds"
	OpStats      = "stats"
	OpPing       = "ping"
)

// Request is one client request line.
type Request struct {
	// Op is one of the Op* constants.
	Op string `json:"op"`
	// Name is the lock name (required for acquire, try, release, holds).
	Name string `json:"name,omitempty"`
}

// Response is one server response line.
type Response struct {
	// OK reports whether the request succeeded; on failure Err explains.
	OK  bool   `json:"ok"`
	Err string `json:"err,omitempty"`
	// Acquired answers try: whether the lock was available and is now
	// held by the session.
	Acquired bool `json:"acquired,omitempty"`
	// Holds answers holds.
	Holds bool `json:"holds,omitempty"`
	// Stats answers stats.
	Stats *Stats `json:"stats,omitempty"`
}

// Stats is the manager-wide counter snapshot served by the stats op.
type Stats struct {
	Acquires      uint64 `json:"acquires"`
	Releases      uint64 `json:"releases"`
	Waits         uint64 `json:"waits"`
	TryAcquires   uint64 `json:"try_acquires"`
	TryFailures   uint64 `json:"try_failures"`
	LockCreates   uint64 `json:"lock_creates"`
	Evictions     uint64 `json:"evictions"`
	ResidentLocks int    `json:"resident_locks"`
	// Violations is the manager's holder cross-check: it must stay 0.
	Violations uint64 `json:"violations"`
	// Sessions is the number of live connections.
	Sessions int `json:"sessions"`
}
