package lockd_test

// Regression tests for the request-line length handling: the old
// bufio.Scanner reader hit its default 64KB cap and silently stopped
// scanning; the ReadSlice loop must instead (a) handle lines larger than
// the bufio buffer transparently up to the configured limit and (b)
// answer an over-limit line with one explanatory protocol error before
// hanging up.

import (
	"bufio"
	"net"
	"strings"
	"testing"
	"time"

	"anonmutex/internal/lockmgr"
	"anonmutex/lockd"
)

// dialRaw opens a raw conn to a fresh server with the given line limit.
func dialRaw(t *testing.T, maxLine int) net.Conn {
	t.Helper()
	mgr, err := lockmgr.New(lockmgr.Config{})
	if err != nil {
		t.Fatal(err)
	}
	srv := lockd.NewServer(mgr)
	srv.MaxLineBytes = maxLine
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(ln)
	t.Cleanup(func() {
		ctx, cancel := benchCtx()
		defer cancel()
		srv.Shutdown(ctx)
	})
	conn, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { conn.Close() })
	conn.SetDeadline(time.Now().Add(5 * time.Second))
	return conn
}

// TestLongLineWithinLimit: a request far beyond bufio's 4KB internal
// buffer (and beyond the old scanner's 64KB cap) must work normally.
func TestLongLineWithinLimit(t *testing.T) {
	conn := dialRaw(t, 1<<20)
	name := strings.Repeat("k", 100_000)
	if _, err := conn.Write([]byte(`{"op":"acquire","name":"` + name + "\"}\n")); err != nil {
		t.Fatal(err)
	}
	var resp lockd.Response
	br := bufio.NewReader(conn)
	line, err := br.ReadBytes('\n')
	if err != nil {
		t.Fatal(err)
	}
	if err := lockd.DecodeResponse(line[:len(line)-1], &resp); err != nil {
		t.Fatal(err)
	}
	if !resp.OK || !resp.Acquired {
		t.Fatalf("acquire with a 100KB name failed: %+v", resp)
	}
}

// TestSmallLimitBindsBelowBufioBuffer: a limit smaller than bufio's
// internal buffer must still be enforced (the fast path returns lines
// up to the buffer size without ever seeing ErrBufferFull).
func TestSmallLimitBindsBelowBufioBuffer(t *testing.T) {
	conn := dialRaw(t, 256)
	if _, err := conn.Write([]byte(`{"op":"acquire","name":"` + strings.Repeat("x", 1000) + "\"}\n")); err != nil {
		t.Fatal(err)
	}
	br := bufio.NewReader(conn)
	line, err := br.ReadBytes('\n')
	if err != nil {
		t.Fatalf("expected a protocol error response, got read error %v", err)
	}
	var resp lockd.Response
	if err := lockd.DecodeResponse(line[:len(line)-1], &resp); err != nil {
		t.Fatal(err)
	}
	if resp.OK || !strings.Contains(resp.Err, "line limit") {
		t.Fatalf("want a line-limit protocol error, got %+v", resp)
	}
}

// TestOverlongLineProtocolError: a line over the limit draws one error
// response naming the problem, then the connection closes.
func TestOverlongLineProtocolError(t *testing.T) {
	conn := dialRaw(t, 8192)
	junk := strings.Repeat("x", 20_000)
	if _, err := conn.Write([]byte(`{"op":"acquire","name":"` + junk + "\"}\n")); err != nil {
		t.Fatal(err)
	}
	br := bufio.NewReader(conn)
	line, err := br.ReadBytes('\n')
	if err != nil {
		t.Fatalf("expected a protocol error response, got read error %v", err)
	}
	var resp lockd.Response
	if err := lockd.DecodeResponse(line[:len(line)-1], &resp); err != nil {
		t.Fatal(err)
	}
	if resp.OK || !strings.Contains(resp.Err, "line limit") {
		t.Fatalf("want a line-limit protocol error, got %+v", resp)
	}
	// The server hangs up after the error.
	if _, err := br.ReadByte(); err == nil {
		t.Error("connection still open after a protocol error")
	}
}
