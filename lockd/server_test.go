package lockd_test

import (
	"bufio"
	"context"
	"encoding/json"
	"net"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"anonmutex/internal/lockmgr"
	"anonmutex/lockd"
	"anonmutex/lockd/client"
)

// startServer runs a server on a loopback listener and tears it down
// with the test.
func startServer(t *testing.T, cfg lockmgr.Config) (*lockd.Server, *lockmgr.Manager, string) {
	t.Helper()
	mgr, err := lockmgr.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	srv := lockd.NewServer(mgr)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ln) }()
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			t.Errorf("Shutdown: %v", err)
		}
		if err := <-serveErr; err != nil {
			t.Errorf("Serve: %v", err)
		}
	})
	return srv, mgr, ln.Addr().String()
}

func TestSessionLifecycle(t *testing.T) {
	_, _, addr := startServer(t, lockmgr.Config{HandlesPerLock: 2})
	c, err := client.DialConn(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	if err := c.Ping(); err != nil {
		t.Fatal(err)
	}
	if held, err := c.Holds("k"); err != nil || held {
		t.Fatalf("Holds before acquire: held=%v err=%v", held, err)
	}
	if err := c.Acquire("k"); err != nil {
		t.Fatal(err)
	}
	if held, err := c.Holds("k"); err != nil || !held {
		t.Fatalf("Holds inside critical section: held=%v err=%v", held, err)
	}
	if err := c.Acquire("k"); err == nil {
		t.Error("re-acquiring a held name in one session succeeded")
	}
	if err := c.Release("k"); err != nil {
		t.Fatal(err)
	}
	if err := c.Release("k"); err == nil {
		t.Error("releasing an unheld name succeeded")
	}
	st, err := c.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.Acquires != 1 || st.Releases != 1 || st.Violations != 0 || st.Sessions != 1 {
		t.Errorf("stats = %+v", st)
	}
}

func TestTryAcquireAcrossSessions(t *testing.T) {
	_, _, addr := startServer(t, lockmgr.Config{HandlesPerLock: 2})
	a, err := client.DialConn(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	b, err := client.DialConn(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()

	if ok, err := a.TryAcquire("k"); err != nil || !ok {
		t.Fatalf("first try: ok=%v err=%v", ok, err)
	}
	if ok, err := b.TryAcquire("k"); err != nil || ok {
		t.Fatalf("try of a lock held by another session: ok=%v err=%v", ok, err)
	}
	if err := a.Release("k"); err != nil {
		t.Fatal(err)
	}
	if ok, err := b.TryAcquire("k"); err != nil || !ok {
		t.Fatalf("try after release: ok=%v err=%v", ok, err)
	}
	if err := b.Release("k"); err != nil {
		t.Fatal(err)
	}
}

// TestDisconnectReleasesGrants drops a connection mid-hold: the server's
// session cleanup must free the lock for the next client.
func TestDisconnectReleasesGrants(t *testing.T) {
	_, mgr, addr := startServer(t, lockmgr.Config{HandlesPerLock: 2})
	a, err := client.DialConn(addr)
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Acquire("k"); err != nil {
		t.Fatal(err)
	}
	if err := a.Close(); err != nil { // vanish without releasing
		t.Fatal(err)
	}
	b, err := client.DialConn(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	if err := b.Acquire("k"); err != nil { // blocks until cleanup frees it
		t.Fatal(err)
	}
	if err := b.Release("k"); err != nil {
		t.Fatal(err)
	}
	if v := mgr.Violations(); v != 0 {
		t.Fatalf("%d violations", v)
	}
}

// TestMutualExclusionOverNetwork has several sessions contend for one
// name with a client-side owner token and the in-CS holds check.
func TestMutualExclusionOverNetwork(t *testing.T) {
	_, mgr, addr := startServer(t, lockmgr.Config{HandlesPerLock: 2})
	const sessions = 4
	const cycles = 10
	var owner atomic.Int64
	var violations atomic.Int64
	var wg sync.WaitGroup
	for i := 1; i <= sessions; i++ {
		wg.Add(1)
		go func(me int64) {
			defer wg.Done()
			c, err := client.DialConn(addr)
			if err != nil {
				t.Error(err)
				return
			}
			defer c.Close()
			for s := 0; s < cycles; s++ {
				if err := c.Acquire("hot"); err != nil {
					t.Error(err)
					return
				}
				if !owner.CompareAndSwap(0, me) {
					violations.Add(1)
				}
				if held, err := c.Holds("hot"); err != nil || !held {
					t.Errorf("in-CS holds check: held=%v err=%v", held, err)
				}
				if !owner.CompareAndSwap(me, 0) {
					violations.Add(1)
				}
				if err := c.Release("hot"); err != nil {
					t.Error(err)
					return
				}
			}
		}(int64(i))
	}
	wg.Wait()
	if v := violations.Load(); v != 0 {
		t.Fatalf("%d client-observed violations", v)
	}
	if v := mgr.Violations(); v != 0 {
		t.Fatalf("%d manager-observed violations", v)
	}
}

// TestShutdownForceClosesIdleSessions: a connected idle client must not
// stall Shutdown past its context.
func TestShutdownForceClosesIdleSessions(t *testing.T) {
	mgr, err := lockmgr.New(lockmgr.Config{HandlesPerLock: 2})
	if err != nil {
		t.Fatal(err)
	}
	srv := lockd.NewServer(mgr)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ln) }()
	c, err := client.DialConn(ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.Acquire("k"); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer cancel()
	start := time.Now()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Errorf("Shutdown took %v", elapsed)
	}
	if err := <-serveErr; err != nil {
		t.Errorf("Serve: %v", err)
	}
	// The force-closed session must have released its grant.
	if err := mgr.Close(); err != nil {
		t.Errorf("manager still has leases after shutdown: %v", err)
	}
}

// TestRawProtocolErrors exercises the wire-level error paths a typed
// client cannot reach.
func TestRawProtocolErrors(t *testing.T) {
	_, _, addr := startServer(t, lockmgr.Config{HandlesPerLock: 2})
	send := func(line string) lockd.Response {
		t.Helper()
		conn, err := net.Dial("tcp", addr)
		if err != nil {
			t.Fatal(err)
		}
		defer conn.Close()
		if _, err := conn.Write([]byte(line + "\n")); err != nil {
			t.Fatal(err)
		}
		raw, err := bufio.NewReader(conn).ReadBytes('\n')
		if err != nil {
			t.Fatal(err)
		}
		var resp lockd.Response
		if err := json.Unmarshal(raw, &resp); err != nil {
			t.Fatalf("unparseable response %q: %v", raw, err)
		}
		return resp
	}
	if resp := send(`{"op":"levitate"}`); resp.OK || !strings.Contains(resp.Err, "unknown op") {
		t.Errorf("unknown op: %+v", resp)
	}
	if resp := send(`{"op":"acquire"}`); resp.OK || !strings.Contains(resp.Err, "needs a name") {
		t.Errorf("missing name: %+v", resp)
	}
	if resp := send(`{not json`); resp.OK || !strings.Contains(resp.Err, "bad request") {
		t.Errorf("malformed line: %+v", resp)
	}
}
