package lockd_test

// Proxy-mode forwarding tests: the happy path (a foreign-key acquire
// through a proxy node lands on the owner and comes back in one
// client-visible round trip, hinted), the structural loop guard (two
// nodes with divergent views degrade to a redirect instead of
// forwarding in a cycle), the client-side redirect hop cap the guard
// falls back on, forwarded cancel, and old clients riding through a
// proxy untouched.

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"testing"
	"time"

	"anonmutex/internal/cluster"
	"anonmutex/internal/lockmgr"
	"anonmutex/lockd"
	"anonmutex/lockd/client"
)

// TestProxyForward drives the full proxied-grant lifecycle through the
// non-owner of a 2-node proxy cluster: acquire, holds, heartbeat, and
// release all answer on the client's connection to the wrong node, with
// mutual exclusion enforced at the owner throughout.
func TestProxyForward(t *testing.T) {
	nodes := startProxyCluster(t, 2)
	key := keyOwnedBy(t, nodes, "n0")

	other, err := client.DialConn(nodes[1].addr)
	if err != nil {
		t.Fatal(err)
	}
	defer other.Close()
	if err := other.Acquire(key); err != nil {
		t.Fatalf("proxied acquire: %v", err)
	}
	if tok := other.Token(key); tok == 0 {
		t.Error("proxied grant carried no fencing token")
	}

	// Exclusion is the owner's: a direct try at n0 must lose.
	owner, err := client.DialConn(nodes[0].addr)
	if err != nil {
		t.Fatal(err)
	}
	defer owner.Close()
	if ok, err := owner.TryAcquire(key); err != nil || ok {
		t.Fatalf("TryAcquire of proxied-held key at the owner = %v, %v; exclusion broken", ok, err)
	}

	// Grant-bound ops route through the proxy to the owner's truth.
	if held, err := other.Holds(key); err != nil || !held {
		t.Errorf("Holds through the proxy = %v, %v", held, err)
	}
	if err := other.Heartbeat(); err != nil {
		t.Errorf("Heartbeat through the proxy: %v", err)
	}

	if err := other.Release(key); err != nil {
		t.Fatalf("proxied release: %v", err)
	}
	// The release rides the stream's FIFO; a fresh forwarded try through
	// the same proxy is ordered after it and must win immediately.
	if ok, err := other.TryAcquire(key); err != nil || !ok {
		t.Fatalf("TryAcquire after proxied release = %v, %v", ok, err)
	}
	if err := other.Release(key); err != nil {
		t.Fatal(err)
	}

	fwd, fb := nodes[1].srv.ProxyCounters()
	if fwd == 0 {
		t.Error("proxy node forwarded nothing")
	}
	if fb != 0 {
		t.Errorf("proxy node recorded %d fallbacks", fb)
	}
	if fwd0, _ := nodes[0].srv.ProxyCounters(); fwd0 != 0 {
		t.Errorf("owner node forwarded %d ops; nothing should leave it", fwd0)
	}
}

// TestProxyOwnerHint checks the wire-visible half of convergence: a
// forwarded grant's response carries owner_hint naming the real owner,
// so routing clients can go direct next time.
func TestProxyOwnerHint(t *testing.T) {
	nodes := startProxyCluster(t, 2)
	key := keyOwnedBy(t, nodes, "n0")

	conn, err := net.Dial("tcp", nodes[1].addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	fmt.Fprintf(conn, `{"op":%q,"name":%q}`+"\n", lockd.OpTryAcquire, key)
	line, err := bufio.NewReader(conn).ReadString('\n')
	if err != nil {
		t.Fatal(err)
	}
	var resp struct {
		OK        bool   `json:"ok"`
		Acquired  bool   `json:"acquired"`
		OwnerHint bool   `json:"owner_hint"`
		Owner     string `json:"owner"`
		Epoch     uint64 `json:"epoch"`
	}
	if err := json.Unmarshal([]byte(line), &resp); err != nil {
		t.Fatalf("unparseable response %q: %v", line, err)
	}
	if !resp.OK || !resp.Acquired {
		t.Fatalf("forwarded try was not granted: %s", line)
	}
	if !resp.OwnerHint || resp.Owner != nodes[0].addr {
		t.Errorf("hint = %v owner = %q, want hint at %q", resp.OwnerHint, resp.Owner, nodes[0].addr)
	}
	if resp.Epoch == 0 {
		t.Error("owner hint carried no epoch")
	}
}

// TestProxyRoutedClientConverges pins hot-key convergence: a routing
// client that only knows the proxy's address learns the owner from the
// hint on its first forwarded acquire, and its next acquire of the key
// goes to the owner directly — the proxy forwards nothing further.
func TestProxyRoutedClientConverges(t *testing.T) {
	nodes := startProxyCluster(t, 2)
	key := keyOwnedBy(t, nodes, "n0")

	cl, err := client.Dial(client.Options{Addrs: []string{nodes[1].addr}})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	s, err := cl.Open()
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	// First trip: forwarded (the client knows only the non-owner).
	if err := s.Acquire(key); err != nil {
		t.Fatalf("first routed acquire: %v", err)
	}
	if err := s.Release(key); err != nil {
		t.Fatal(err)
	}
	fwdAfterFirst, _ := nodes[1].srv.ProxyCounters()
	if fwdAfterFirst == 0 {
		t.Fatal("first acquire was not forwarded")
	}

	// Second trip: the hint sent it direct; the proxy's counter freezes.
	if err := s.Acquire(key); err != nil {
		t.Fatalf("second routed acquire: %v", err)
	}
	if err := s.Release(key); err != nil {
		t.Fatal(err)
	}
	if fwd, _ := nodes[1].srv.ProxyCounters(); fwd != fwdAfterFirst {
		t.Errorf("proxy forwarded %d more ops after the hint; the client should have gone direct", fwd-fwdAfterFirst)
	}
}

// TestProxyCancelForwarded checks that Cancel chases an acquire blocked
// at the owner through the forwarding hop: the proxied waiter withdraws
// cleanly with Aborted instead of hanging until the holder releases.
func TestProxyCancelForwarded(t *testing.T) {
	nodes := startProxyCluster(t, 2)
	key := keyOwnedBy(t, nodes, "n0")

	holder, err := client.DialConn(nodes[0].addr)
	if err != nil {
		t.Fatal(err)
	}
	defer holder.Close()
	if err := holder.Acquire(key); err != nil {
		t.Fatal(err)
	}

	waiter, err := client.DialConn(nodes[1].addr)
	if err != nil {
		t.Fatal(err)
	}
	defer waiter.Close()
	acquired := make(chan error, 1)
	go func() { acquired <- waiter.Acquire(key) }()
	// Let the forwarded acquire park at the owner before chasing it.
	time.Sleep(200 * time.Millisecond)
	select {
	case err := <-acquired:
		t.Fatalf("forwarded acquire resolved early: %v", err)
	default:
	}
	if err := waiter.Cancel(key); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-acquired:
		if !errors.Is(err, client.ErrAborted) {
			t.Fatalf("cancelled forwarded acquire = %v, want ErrAborted", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("cancel never reached the forwarded acquire")
	}
	// The holder was never disturbed.
	if held, err := holder.Holds(key); err != nil || !held {
		t.Errorf("holder lost the lock to a cancelled waiter: %v, %v", held, err)
	}
}

// aliasedPair builds the divergent-view fixture the loop-guard tests
// need: two single-server "universes" that each gossip with a dummy
// member advertising the other universe's lock address. Universe A
// believes some keys belong to a member at B's address and vice versa,
// so a key both sides disown bounces between them — exactly the views
// under which forwarding must not cycle. It returns the two servers,
// their lock addresses, and a key each side routes to the other.
func aliasedPair(t *testing.T, proxy bool) (srvA, srvB *lockd.Server, addrA, addrB, key string) {
	t.Helper()
	lnA, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	lnB, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addrA, addrB = lnA.Addr().String(), lnB.Addr().String()

	start := func(selfID, selfAddr, dummyID, dummyAddr string, ln net.Listener) (*lockd.Server, *cluster.Node) {
		mgr, err := lockmgr.New(lockmgr.Config{HandlesPerLock: 4})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { mgr.Close() })
		self, err := cluster.Start(cluster.Config{
			ID:         selfID,
			Addr:       selfAddr,
			GossipAddr: "127.0.0.1:0",
			Interval:   20 * time.Millisecond,
		})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { self.Close() })
		dummy, err := cluster.Start(cluster.Config{
			ID:         dummyID,
			Addr:       dummyAddr,
			GossipAddr: "127.0.0.1:0",
			Seeds:      []string{self.GossipAddr()},
			Interval:   20 * time.Millisecond,
		})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { dummy.Close() })
		srv := lockd.NewServer(mgr)
		srv.LeaseTTL = time.Second
		srv.Cluster = self
		srv.Proxy = proxy
		serveErr := make(chan error, 1)
		go func() { serveErr <- srv.Serve(ln) }()
		t.Cleanup(func() {
			ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
			defer cancel()
			if err := srv.Shutdown(ctx); err != nil {
				t.Errorf("Shutdown: %v", err)
			}
			if err := <-serveErr; err != nil {
				t.Errorf("Serve: %v", err)
			}
		})
		// Wait until the universe has converged on both members.
		deadline := time.Now().Add(5 * time.Second)
		for {
			alive := 0
			for _, m := range self.View().Members {
				if m.State == cluster.StateAlive {
					alive++
				}
			}
			if alive == 2 {
				return srv, self
			}
			if time.Now().After(deadline) {
				t.Fatalf("universe of %s never converged", selfID)
			}
			time.Sleep(10 * time.Millisecond)
		}
	}

	srvA, nodeA := start("a", addrA, "peer-b", addrB, lnA)
	srvB, nodeB := start("b", addrB, "peer-a", addrA, lnB)

	viewA, viewB := nodeA.View(), nodeB.View()
	for i := 0; i < 100000; i++ {
		name := fmt.Sprintf("bounced-%d", i)
		oa, okA := viewA.Owner(name)
		ob, okB := viewB.Owner(name)
		if okA && okB && oa.ID == "peer-b" && ob.ID == "peer-a" {
			return srvA, srvB, addrA, addrB, name
		}
	}
	t.Fatal("no key routed across both universes")
	return nil, nil, "", "", ""
}

// TestProxyLoopGuard pins the hop cap: when two proxy nodes' views each
// route a key to the other, the op is forwarded exactly once — the
// second node, seeing the op arrive over an inter-node connection,
// answers wrong_owner instead of forwarding again — and the client gets
// a redirect, never a hang or a forwarding cycle.
func TestProxyLoopGuard(t *testing.T) {
	srvA, srvB, addrA, _, key := aliasedPair(t, true)

	c, err := client.DialConn(addrA)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	done := make(chan error, 1)
	go func() {
		_, err := c.TryAcquire(key)
		done <- err
	}()
	var acqErr error
	select {
	case acqErr = <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("cross-routed acquire hung: the forwarding loop was not cut")
	}
	var redir *client.RedirectError
	if !errors.As(acqErr, &redir) {
		t.Fatalf("cross-routed acquire = %v, want RedirectError", acqErr)
	}
	if redir.Owner != addrA {
		t.Errorf("redirect points at %q, want %q (b's view of the owner)", redir.Owner, addrA)
	}

	// a paid one wasted hop and fell back; b forwarded nothing.
	if fwd, fb := srvA.ProxyCounters(); fwd != 0 || fb != 1 {
		t.Errorf("a forwarded=%d fallbacks=%d, want 0/1", fwd, fb)
	}
	if fwd, _ := srvB.ProxyCounters(); fwd != 0 {
		t.Errorf("b forwarded %d ops over an inter-node connection", fwd)
	}
}

// TestRedirectHopCap pins the client-side bound the loop guard degrades
// to: with proxying off, a key both nodes disown redirects back and
// forth, and the routed client gives up with the redirect error after
// MaxRedirects hops instead of following the cycle forever.
func TestRedirectHopCap(t *testing.T) {
	_, _, addrA, _, key := aliasedPair(t, false)

	cl, err := client.Dial(client.Options{
		Addrs:        []string{addrA},
		MaxRedirects: 2,
		MaxAttempts:  8,
		RetryBackoff: time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	s, err := cl.Open()
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	done := make(chan error, 1)
	go func() {
		_, err := s.TryAcquire(key)
		done <- err
	}()
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("cross-routed acquire succeeded; both views disown the key")
		}
		var redir *client.RedirectError
		if !errors.As(err, &redir) {
			t.Fatalf("hop-capped acquire = %v, want the terminal RedirectError", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("routed client followed the redirect cycle past its hop cap")
	}
}

// TestProxyOldClientForwarded runs a v1 binary client — two protocol
// generations before redirects existed — against a proxy node: its
// foreign-key ops are forwarded transparently and it gets plain grants,
// where a redirect-mode node could only reject it.
func TestProxyOldClientForwarded(t *testing.T) {
	nodes := startProxyCluster(t, 2)
	awayKey := keyOwnedBy(t, nodes, "n0")

	conn, err := net.Dial("tcp", nodes[1].addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if _, err := conn.Write(lockd.BinaryMagic[:]); err != nil {
		t.Fatal(err)
	}
	br := bufio.NewReader(conn)
	do := func(op, name string) lockd.Response {
		t.Helper()
		frame := lockd.BeginFrame(nil, 1)
		frame, err := lockd.AppendRequestBin(frame, &lockd.Request{Op: op, Name: name})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := conn.Write(lockd.EndFrame(frame, 0)); err != nil {
			t.Fatal(err)
		}
		stream, ops, _, err := lockd.ReadFrame(br, nil, 0)
		if err != nil {
			t.Fatal(err)
		}
		if stream != 1 {
			t.Fatalf("response on stream %d", stream)
		}
		var resp lockd.Response
		if _, err := lockd.DecodeResponseBinV1(ops, &resp); err != nil {
			t.Fatalf("v1 decode: %v", err)
		}
		return resp
	}

	if resp := do(lockd.OpTryAcquire, awayKey); !resp.OK || !resp.Acquired {
		t.Fatalf("v1 foreign-key try through the proxy = %+v, want a grant", resp)
	}
	if resp := do(lockd.OpRelease, awayKey); !resp.OK {
		t.Fatalf("v1 release through the proxy = %+v", resp)
	}
	if fwd, _ := nodes[1].srv.ProxyCounters(); fwd == 0 {
		t.Error("v1 ops were not forwarded")
	}
}
