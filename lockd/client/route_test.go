package client

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"
)

func TestOwnerCacheLearnLookupInvalidate(t *testing.T) {
	var oc ownerCache
	if _, ok := oc.lookup("k"); ok {
		t.Fatal("empty cache reported an owner")
	}
	oc.learn("k", "a:1", 1)
	if addr, ok := oc.lookup("k"); !ok || addr != "a:1" {
		t.Fatalf("lookup after learn = %q, %v", addr, ok)
	}
	// A redirect that proved wrong drops exactly that entry.
	oc.learn("other", "b:1", 1)
	oc.invalidate("k")
	if _, ok := oc.lookup("k"); ok {
		t.Fatal("invalidated entry still cached")
	}
	if addr, ok := oc.lookup("other"); !ok || addr != "b:1" {
		t.Fatalf("invalidate dropped an unrelated entry: %q, %v", addr, ok)
	}
}

func TestOwnerCacheEpochFlush(t *testing.T) {
	var oc ownerCache
	oc.learn("k1", "a:1", 1)
	oc.learn("k2", "b:1", 1)

	// A newer epoch flushes everything learned under the old view: after
	// a membership change every cached owner is suspect.
	oc.learn("k3", "c:1", 2)
	if oc.Epoch() != 2 {
		t.Fatalf("epoch = %d, want 2", oc.Epoch())
	}
	for _, k := range []string{"k1", "k2"} {
		if addr, ok := oc.lookup(k); ok {
			t.Fatalf("stale-epoch entry %s survived the flush (%q)", k, addr)
		}
	}
	if addr, ok := oc.lookup("k3"); !ok || addr != "c:1" {
		t.Fatalf("entry that triggered the flush missing: %q, %v", addr, ok)
	}

	// A redirect computed under an epoch the cache has already moved past
	// is ignored: it describes a view that no longer exists.
	oc.learn("k4", "d:1", 1)
	if _, ok := oc.lookup("k4"); ok {
		t.Fatal("stale-epoch redirect was learned")
	}
	if oc.Epoch() != 2 {
		t.Fatalf("stale learn moved the epoch to %d", oc.Epoch())
	}
}

// TestOwnerCacheConcurrent drives lookups, learns across epochs, and
// invalidations from many goroutines; the race detector is the judge.
func TestOwnerCacheConcurrent(t *testing.T) {
	var oc ownerCache
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				name := fmt.Sprintf("k%d", i%7)
				switch g % 3 {
				case 0:
					oc.learn(name, "a:1", uint64(i%5))
				case 1:
					if addr, ok := oc.lookup(name); ok && addr == "" {
						t.Error("cached empty owner")
					}
				case 2:
					oc.invalidate(name)
				}
			}
		}(g)
	}
	wg.Wait()
}

func TestFallbackAddrDeterministic(t *testing.T) {
	addrs := []string{"a:1", "b:1", "c:1"}
	seen := map[string]bool{}
	for _, name := range []string{"alpha", "beta", "gamma", "delta", "epsilon"} {
		first := fallbackAddr(addrs, name, nil)
		found := false
		for _, a := range addrs {
			found = found || a == first
		}
		if !found {
			t.Fatalf("fallbackAddr(%q) = %q, not in the address list", name, first)
		}
		for i := 0; i < 5; i++ {
			if got := fallbackAddr(addrs, name, nil); got != first {
				t.Fatalf("fallbackAddr(%q) flapped: %q then %q", name, first, got)
			}
		}
		seen[first] = true
	}
	if len(seen) < 2 {
		t.Errorf("five keys all guessed the same member; the hash is not spreading")
	}

	// A skipped address is avoided while alternatives exist…
	avoided := fallbackAddr(addrs, "alpha", func(a string) bool { return a == fallbackAddr(addrs, "alpha", nil) })
	if avoided == fallbackAddr(addrs, "alpha", nil) {
		t.Error("skip did not exclude the quarantined address")
	}
	// …but an all-skipped set still yields a usable guess.
	if got := fallbackAddr(addrs, "alpha", func(string) bool { return true }); got != fallbackAddr(addrs, "alpha", nil) {
		t.Errorf("all-skipped fallback = %q, want the unskipped choice", got)
	}
}

func TestDialOptionDefaults(t *testing.T) {
	cases := []struct {
		name    string
		in      Options
		wantErr bool
		check   func(Options) error
	}{
		{name: "no addrs", in: Options{}, wantErr: true},
		{name: "blank addr", in: Options{Addrs: []string{" "}}, wantErr: true},
		{name: "json default", in: Options{Addrs: []string{"a:1"}}, check: func(o Options) error {
			if o.Proto != ProtoJSON {
				return fmt.Errorf("Proto = %q", o.Proto)
			}
			return nil
		}},
		{name: "conns imply binary", in: Options{Addrs: []string{"a:1"}, ConnsPerSocket: 4}, check: func(o Options) error {
			if o.Proto != ProtoBinary {
				return fmt.Errorf("Proto = %q", o.Proto)
			}
			return nil
		}},
		{name: "binary defaults conns", in: Options{Addrs: []string{"a:1"}, Proto: ProtoBinary}, check: func(o Options) error {
			if o.ConnsPerSocket != 1 {
				return fmt.Errorf("ConnsPerSocket = %d", o.ConnsPerSocket)
			}
			return nil
		}},
		{name: "json rejects conns", in: Options{Addrs: []string{"a:1"}, Proto: ProtoJSON, ConnsPerSocket: 2}, wantErr: true},
		{name: "unknown proto", in: Options{Addrs: []string{"a:1"}, Proto: "quic"}, wantErr: true},
		{name: "negative conns", in: Options{Addrs: []string{"a:1"}, ConnsPerSocket: -1}, wantErr: true},
		{name: "routing defaults", in: Options{Addrs: []string{"a:1", "b:1"}}, check: func(o Options) error {
			if o.MaxRedirects != 3 || o.RetryBackoff != 10*time.Millisecond || o.CrashTimeout != 10*time.Second {
				return fmt.Errorf("defaults = %+v", o)
			}
			if o.RetryBackoffMax != time.Second || o.MaxAttempts != 6 {
				return fmt.Errorf("retry defaults = %+v", o)
			}
			return nil
		}},
		{name: "backoff max floored at base", in: Options{Addrs: []string{"a:1"}, RetryBackoff: 3 * time.Second, RetryBackoffMax: time.Second}, check: func(o Options) error {
			if o.RetryBackoffMax != 3*time.Second {
				return fmt.Errorf("RetryBackoffMax = %v", o.RetryBackoffMax)
			}
			return nil
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			out, err := tc.in.withDefaults()
			if tc.wantErr {
				if err == nil {
					t.Fatalf("withDefaults(%+v) accepted", tc.in)
				}
				return
			}
			if err != nil {
				t.Fatal(err)
			}
			if tc.check != nil {
				if err := tc.check(out); err != nil {
					t.Error(err)
				}
			}
		})
	}
}

// TestRetryDelay pins the backoff envelope: every sample of retry n
// lands in [min(base·2ⁿ, max)/2, min(base·2ⁿ, max)], and once the
// exponent passes the cap the envelope stops growing.
func TestRetryDelay(t *testing.T) {
	const base = 10 * time.Millisecond
	const max = 80 * time.Millisecond
	for attempt := 0; attempt < 12; attempt++ {
		want := base << attempt
		if want > max || want <= 0 {
			want = max
		}
		for i := 0; i < 200; i++ {
			d := retryDelay(attempt, base, max)
			if d < want/2 || d > want {
				t.Fatalf("retryDelay(%d) = %v, want within [%v, %v]", attempt, d, want/2, want)
			}
		}
	}
	// A giant attempt number must not overflow into a negative or
	// over-cap delay.
	if d := retryDelay(1<<30, base, max); d < max/2 || d > max {
		t.Fatalf("retryDelay(huge) = %v", d)
	}
}

// TestDialRefusesBadOptions pins that Dial itself (not just the helper)
// rejects an unusable configuration instead of failing at first use.
func TestDialRefusesBadOptions(t *testing.T) {
	if _, err := Dial(Options{}); err == nil {
		t.Fatal("Dial with no addresses succeeded")
	}
	cl, err := Dial(Options{Addrs: []string{"127.0.0.1:1"}})
	if err != nil {
		t.Fatalf("lazy Dial should not connect: %v", err)
	}
	defer cl.Close()
	s, err := cl.Open()
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Ping(); !errors.Is(err, ErrUnavailable) {
		t.Errorf("Ping against a dead address = %v, want ErrUnavailable", err)
	}
}
