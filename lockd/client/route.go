package client

// Cluster-aware routing behind the unified Client/Session interfaces.
// A poolClient owns the per-address transports (dialed lazily) and one
// ownership cache shared by all its sessions; each routedSession keeps
// one sub-session per address it has talked to and pins every grant to
// the address that issued it. Acquire-type ops follow wrong_owner
// redirects (updating the cache) and retry unavailable members against
// the rest; grant-bound ops (release, holds) go only to the granting
// address — if ownership moved, that node answers Fenced, which is the
// truthful outcome, and if the node died the grant died with it.

import (
	"errors"
	"fmt"
	"hash/fnv"
	"math/rand/v2"
	"sync"
	"time"

	"anonmutex/lockd"
)

// retryDelay is the pause before retry number attempt (0-based):
// exponential from base, capped at max, jittered uniformly over
// [d/2, d]. The jitter is what matters during a restart window — a
// fleet of clients that all saw the server die at the same instant
// must not all redial at the same instant, every doubling thereafter.
func retryDelay(attempt int, base, max time.Duration) time.Duration {
	d := base
	for i := 0; i < attempt && d < max; i++ {
		d *= 2
	}
	if d > max {
		d = max
	}
	half := d / 2
	return half + rand.N(d-half+1)
}

// errClientClosed fails operations issued after Close.
var errClientClosed = errors.New("client: closed")

// ownerCacheCap bounds the ownership cache: past it, learning a new
// key evicts an arbitrary resident entry (one map-range step — cheap,
// and any entry is a fine victim since a miss only costs one redirect).
// Without the cap a large keyspace would grow the routed client without
// limit, one entry per key ever touched.
const ownerCacheCap = 4096

// ownerCache maps keys to the cluster address last seen owning them,
// stamped with the membership epoch the information came from. Entries
// are only ever learned from redirects or owner hints (the server's own
// routing table), invalidated when they mislead, and flushed wholesale
// when a newer epoch appears — after a membership change every cached
// owner is suspect, and one round of redirects re-learns the hot set.
type ownerCache struct {
	mu     sync.RWMutex
	epoch  uint64
	owners map[string]string
}

// lookup reports the cached owner for name, if any.
func (oc *ownerCache) lookup(name string) (string, bool) {
	oc.mu.RLock()
	addr, ok := oc.owners[name]
	oc.mu.RUnlock()
	return addr, ok
}

// learn records a redirect: name is owned by addr as of epoch. A newer
// epoch flushes the whole cache first; a stale epoch (older than what
// the cache has already seen) is ignored — the redirect was computed
// under a view that has since moved on.
func (oc *ownerCache) learn(name, addr string, epoch uint64) {
	oc.mu.Lock()
	defer oc.mu.Unlock()
	if epoch < oc.epoch {
		return
	}
	if epoch > oc.epoch {
		oc.epoch = epoch
		oc.owners = make(map[string]string)
	}
	if oc.owners == nil {
		oc.owners = make(map[string]string)
	}
	if len(oc.owners) >= ownerCacheCap {
		if _, resident := oc.owners[name]; !resident {
			for victim := range oc.owners {
				delete(oc.owners, victim)
				break
			}
		}
	}
	oc.owners[name] = addr
}

// invalidate drops name's cached owner (it redirected us wrong, or the
// node behind it stopped answering).
func (oc *ownerCache) invalidate(name string) {
	oc.mu.Lock()
	delete(oc.owners, name)
	oc.mu.Unlock()
}

// Epoch reports the newest membership epoch the cache has seen.
func (oc *ownerCache) Epoch() uint64 {
	oc.mu.RLock()
	defer oc.mu.RUnlock()
	return oc.epoch
}

// fallbackAddr deterministically guesses an owner for name among addrs
// when the cache has nothing: highest rendezvous score wins, skipping
// addresses reported unusable (unless that empties the candidate set).
// The guess only has to be stable, not right — a wrong guess costs one
// redirect.
func fallbackAddr(addrs []string, name string, skip func(string) bool) string {
	best := ""
	var bestScore uint64
	for pass := 0; pass < 2 && best == ""; pass++ {
		for _, addr := range addrs {
			if pass == 0 && skip != nil && skip(addr) {
				continue
			}
			h := fnv.New64a()
			h.Write([]byte(addr))
			h.Write([]byte{0})
			h.Write([]byte(name))
			if score := h.Sum64(); best == "" || score > bestScore || (score == bestScore && addr < best) {
				best, bestScore = addr, score
			}
		}
	}
	return best
}

// poolClient is the Client behind Dial: per-address transports, the
// shared ownership cache, the crash-corpse parking lot.
type poolClient struct {
	opts  Options
	cache ownerCache

	mu        sync.Mutex
	pools     map[string]*MuxPool // ProtoBinary: one socket pool per address
	down      map[string]time.Time
	sessions  map[*routedSession]struct{}
	statsSubs map[string]*Conn // cached per-address stats sub-sessions
	corpses   []*Conn
	closed    bool
}

func newPoolClient(opts Options) *poolClient {
	return &poolClient{
		opts:      opts,
		pools:     make(map[string]*MuxPool),
		down:      make(map[string]time.Time),
		sessions:  make(map[*routedSession]struct{}),
		statsSubs: make(map[string]*Conn),
	}
}

// Open starts a new routed session.
func (cl *poolClient) Open() (Session, error) {
	cl.mu.Lock()
	defer cl.mu.Unlock()
	if cl.closed {
		return nil, errClientClosed
	}
	s := &routedSession{
		cl:      cl,
		subs:    make(map[string]*Conn),
		grants:  make(map[string]string),
		granted: make(map[string]*Conn),
		hbEvery: cl.opts.Heartbeat,
	}
	cl.sessions[s] = struct{}{}
	return s, nil
}

// openConn dials (or multiplexes) one sub-session to addr.
func (cl *poolClient) openConn(addr string) (*Conn, error) {
	if cl.opts.Proto == ProtoBinary {
		cl.mu.Lock()
		if cl.closed {
			cl.mu.Unlock()
			return nil, errClientClosed
		}
		p := cl.pools[addr]
		if p == nil {
			p = NewMuxPool(addr, cl.opts.ConnsPerSocket)
			cl.pools[addr] = p
		}
		cl.mu.Unlock()
		c, err := p.Open()
		if err != nil {
			cl.markDown(addr)
		}
		return c, err
	}
	c, err := DialConn(addr)
	if err != nil {
		cl.markDown(addr)
	}
	return c, err
}

// markDown quarantines addr from the fallback guess for a few retry
// periods, so a dead member stops being every cache miss's first hop.
// Entries whose quarantine has lapsed are swept here, so the map stays
// bounded by the members that failed recently, not ever.
func (cl *poolClient) markDown(addr string) {
	hold := 4 * cl.opts.RetryBackoff
	if hold < 100*time.Millisecond {
		hold = 100 * time.Millisecond
	}
	now := time.Now()
	cl.mu.Lock()
	for a, until := range cl.down {
		if !now.Before(until) {
			delete(cl.down, a)
		}
	}
	cl.down[addr] = now.Add(hold)
	cl.mu.Unlock()
}

// isDown reports whether addr is still inside its quarantine; a lapsed
// entry is dropped on the way out.
func (cl *poolClient) isDown(addr string) bool {
	cl.mu.Lock()
	defer cl.mu.Unlock()
	until, ok := cl.down[addr]
	if !ok {
		return false
	}
	if time.Now().Before(until) {
		return true
	}
	delete(cl.down, addr)
	return false
}

// route resolves the address to try first for name: the cached owner
// when one is known and answering, the deterministic fallback guess
// otherwise.
func (cl *poolClient) route(name string) string {
	if addr, ok := cl.cache.lookup(name); ok && !cl.isDown(addr) {
		return addr
	}
	return fallbackAddr(cl.opts.Addrs, name, cl.isDown)
}

// statsConn returns the cached stats sub-session for addr, opening one
// over the client's configured transport on first use — under
// ProtoBinary that is a stream on the pooled socket, not a new dial.
func (cl *poolClient) statsConn(addr string) (*Conn, error) {
	cl.mu.Lock()
	if cl.closed {
		cl.mu.Unlock()
		return nil, errClientClosed
	}
	if c := cl.statsSubs[addr]; c != nil {
		cl.mu.Unlock()
		return c, nil
	}
	cl.mu.Unlock()
	c, err := cl.openConn(addr)
	if err != nil {
		return nil, err
	}
	cl.mu.Lock()
	if cl.closed {
		cl.mu.Unlock()
		c.Close()
		return nil, errClientClosed
	}
	if prior := cl.statsSubs[addr]; prior != nil {
		cl.mu.Unlock()
		c.Close()
		return prior, nil
	}
	cl.statsSubs[addr] = c
	cl.mu.Unlock()
	return c, nil
}

// dropStatsConn retires a stats sub-session whose transport broke.
func (cl *poolClient) dropStatsConn(addr string, c *Conn) {
	cl.mu.Lock()
	if cl.statsSubs[addr] == c {
		delete(cl.statsSubs, addr)
	}
	cl.mu.Unlock()
	c.Close()
}

// Stats sums counter snapshots across every reachable address, over the
// client's existing per-address transports (a cached sub-session each —
// no throwaway dial per call); it fails only when no address answers.
func (cl *poolClient) Stats() (lockd.Stats, error) {
	var sum lockd.Stats
	var lastErr error
	reached := 0
	for _, addr := range cl.opts.Addrs {
		c, err := cl.statsConn(addr)
		if err != nil {
			lastErr = err
			continue
		}
		st, err := c.Stats()
		if err != nil {
			cl.dropStatsConn(addr, c)
			lastErr = err
			continue
		}
		reached++
		sum.Acquires += st.Acquires
		sum.Releases += st.Releases
		sum.Waits += st.Waits
		sum.TryAcquires += st.TryAcquires
		sum.TryFailures += st.TryFailures
		sum.LockCreates += st.LockCreates
		sum.Evictions += st.Evictions
		sum.ResidentLocks += st.ResidentLocks
		sum.Aborts += st.Aborts
		sum.LeaseTimeouts += st.LeaseTimeouts
		sum.Expired += st.Expired
		sum.Revoked += st.Revoked
		sum.FencedRejects += st.FencedRejects
		sum.Violations += st.Violations
		sum.Sessions += st.Sessions
		sum.Streams += st.Streams
	}
	if reached == 0 {
		return lockd.Stats{}, fmt.Errorf("client: stats: no address reachable: %w", lastErr)
	}
	return sum, nil
}

// crash acquires name on a throwaway direct connection to its owner and
// parks the corpse: the socket stays open and silent, exactly the
// orphan-holder footprint lease recovery is tested against. Crash
// corpses always get their own socket — even under ProtoBinary — so a
// corpse never shares fate with live streams.
func (cl *poolClient) crash(name string) (bool, error) {
	addr := cl.route(name)
	for hop := 0; ; hop++ {
		c, err := DialConn(addr)
		if err != nil {
			return false, fmt.Errorf("client: crash %s: %w", name, err)
		}
		ok, err := c.AcquireFor(name, cl.opts.CrashTimeout)
		if err != nil {
			c.Close()
			var redir *RedirectError
			if errors.As(err, &redir) && hop < cl.opts.MaxRedirects {
				cl.cache.learn(redir.Name, redir.Owner, redir.Epoch)
				addr = redir.Owner
				continue
			}
			if errors.Is(err, ErrAborted) {
				return false, nil
			}
			return false, fmt.Errorf("client: crash %s: %w", name, err)
		}
		if !ok {
			c.Close()
			return false, nil // died while still waiting: abort, not failure
		}
		cl.mu.Lock()
		if cl.closed {
			cl.mu.Unlock()
			c.Close()
			return false, errClientClosed
		}
		cl.corpses = append(cl.corpses, c)
		cl.mu.Unlock()
		return true, nil
	}
}

// Crashed reports how many crash corpses the client is holding open.
func (cl *poolClient) Crashed() int {
	cl.mu.Lock()
	defer cl.mu.Unlock()
	return len(cl.corpses)
}

// forget unregisters a closed session.
func (cl *poolClient) forget(s *routedSession) {
	cl.mu.Lock()
	delete(cl.sessions, s)
	cl.mu.Unlock()
}

// Close tears down everything the client owns: open sessions, crash
// corpses, pooled sockets.
func (cl *poolClient) Close() error {
	cl.mu.Lock()
	if cl.closed {
		cl.mu.Unlock()
		return nil
	}
	cl.closed = true
	sessions := make([]*routedSession, 0, len(cl.sessions))
	for s := range cl.sessions {
		sessions = append(sessions, s)
	}
	cl.sessions = nil
	corpses := cl.corpses
	cl.corpses = nil
	pools := cl.pools
	cl.pools = nil
	statsSubs := cl.statsSubs
	cl.statsSubs = nil
	cl.mu.Unlock()
	var first error
	for _, s := range sessions {
		if err := s.closeSubs(); err != nil && first == nil {
			first = err
		}
	}
	for _, c := range statsSubs {
		c.Close()
	}
	for _, c := range corpses {
		c.Close()
	}
	for _, p := range pools {
		if err := p.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// routedSession is one Session over a poolClient: sub-sessions per
// address, grants pinned to the address that issued them.
type routedSession struct {
	cl *poolClient

	mu      sync.Mutex
	subs    map[string]*Conn
	grants  map[string]string // held name → granting address
	granted map[string]*Conn  // last grantor per name (kept after release, for Token)
	hbEvery time.Duration
	closed  bool
}

// sub returns the session's connection to addr, opening it on first
// use (with the auto-heartbeat ticker, when configured).
func (s *routedSession) sub(addr string) (*Conn, error) {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil, errClientClosed
	}
	if c := s.subs[addr]; c != nil {
		s.mu.Unlock()
		return c, nil
	}
	s.mu.Unlock()
	c, err := s.cl.openConn(addr)
	if err != nil {
		return nil, err
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		c.Close()
		return nil, errClientClosed
	}
	if prior := s.subs[addr]; prior != nil {
		// Lost an open race; keep the first.
		s.mu.Unlock()
		c.Close()
		return prior, nil
	}
	s.subs[addr] = c
	if s.hbEvery > 0 {
		c.AutoHeartbeat(s.hbEvery)
	}
	s.mu.Unlock()
	return c, nil
}

// dropSub retires a sub-session whose transport broke, so the next op
// to that address redials instead of failing fast forever.
func (s *routedSession) dropSub(addr string, c *Conn) {
	s.mu.Lock()
	if s.subs[addr] == c {
		delete(s.subs, addr)
	}
	s.mu.Unlock()
	c.Close()
}

// acquireRoute runs one acquire-type op with routing: redirects are
// followed (teaching the cache) up to MaxRedirects, unavailable members
// are retried against the rest with backoff, and a success pins the
// grant to the address that issued it. A response carrying an owner
// hint — a proxy-mode node answering for a key it forwarded — also
// teaches the cache: the grant stays pinned to the node that served it
// (release and heartbeat must go where the grant lives, and the proxy
// relays them), but the session's next acquire of that key routes
// straight to the owner, so hot keys converge to direct routing after
// one forwarded trip.
func (s *routedSession) acquireRoute(name string, op func(c *Conn) (lockd.Response, error)) (lockd.Response, error) {
	maxAttempts := s.cl.opts.MaxAttempts
	hops := 0
	next := "" // a just-received redirect target, followed unconditionally
	var lastErr error
	for attempt := 0; attempt < maxAttempts; attempt++ {
		addr := next
		next = ""
		if addr == "" {
			addr = s.cl.route(name)
		}
		c, err := s.sub(addr)
		if err == nil {
			var resp lockd.Response
			resp, err = op(c)
			if err == nil {
				if resp.OwnerHint && resp.Owner != "" {
					s.cl.cache.learn(name, resp.Owner, resp.Epoch)
				}
				if resp.Acquired {
					s.mu.Lock()
					s.grants[name] = addr
					s.granted[name] = c
					s.mu.Unlock()
				}
				return resp, nil
			}
			var redir *RedirectError
			if errors.As(err, &redir) {
				s.cl.cache.learn(redir.Name, redir.Owner, redir.Epoch)
				hops++
				if hops > s.cl.opts.MaxRedirects {
					return lockd.Response{}, err
				}
				// Go where the redirect points, not where the cache says:
				// the cache may rightly refuse to learn from a node whose
				// epoch counter lags the cluster, but the member that just
				// rejected us still knows its view's owner, and following
				// it breaks redirect loops during epoch convergence.
				next = redir.Owner
				continue // no backoff: the redirect told us where to go
			}
			if errors.Is(err, ErrUnavailable) {
				s.cl.markDown(addr)
				s.dropSub(addr, c)
			} else {
				return lockd.Response{}, err // a real rejection (aborted, held, fenced…)
			}
		}
		// Dial failure or mid-op transport loss: the cached owner (if
		// that is what sent us here) is unusable, so forget it and let
		// the fallback pick a surviving member after a short pause.
		s.cl.cache.invalidate(name)
		lastErr = err
		time.Sleep(retryDelay(attempt, s.cl.opts.RetryBackoff, s.cl.opts.RetryBackoffMax))
	}
	return lockd.Response{}, fmt.Errorf("client: %s: no cluster member could serve the acquire: %w", name, lastErr)
}

// grantConn resolves the connection a grant-bound op must use: the
// sub-session at the granting address (falling back to routing when the
// session holds no grant — the server's rejection is the right answer).
func (s *routedSession) grantConn(name string) (*Conn, string, error) {
	s.mu.Lock()
	addr, ok := s.grants[name]
	s.mu.Unlock()
	if !ok {
		addr = s.cl.route(name)
	}
	c, err := s.sub(addr)
	return c, addr, err
}

// Acquire blocks until the session holds name on its owning node.
func (s *routedSession) Acquire(name string) error {
	resp, err := s.acquireRoute(name, func(c *Conn) (lockd.Response, error) {
		return c.doAcquire(lockd.Request{Op: lockd.OpAcquire, Name: name})
	})
	if err != nil {
		return err
	}
	if resp.Aborted {
		return fmt.Errorf("%w: %s", ErrAborted, name)
	}
	return nil
}

// AcquireFor bounds the attempt; expiry reports (false, nil).
func (s *routedSession) AcquireFor(name string, d time.Duration) (bool, error) {
	resp, err := s.acquireRoute(name, func(c *Conn) (lockd.Response, error) {
		return c.doAcquire(acquireForRequest(name, d))
	})
	return resp.Acquired, err
}

// TryAcquire probes the owning node without waiting.
func (s *routedSession) TryAcquire(name string) (bool, error) {
	resp, err := s.acquireRoute(name, func(c *Conn) (lockd.Response, error) {
		return c.doAcquire(lockd.Request{Op: lockd.OpTryAcquire, Name: name})
	})
	return resp.Acquired, err
}

// Release gives a held name back to the node that granted it. The
// grant's address pin is dropped only once the granting node has
// actually answered the release (success or a definitive rejection):
// a dial or transport failure keeps the pin, so a retried Release
// still routes to the node that holds the grant instead of asking a
// stranger that would answer "does not hold" while the grant lives on
// until its TTL.
func (s *routedSession) Release(name string) error {
	c, addr, err := s.grantConn(name)
	if err != nil {
		return err
	}
	if err := c.Release(name); err != nil {
		if errors.Is(err, ErrUnavailable) {
			s.dropSub(addr, c)
			return err
		}
		// The node answered: whatever it said (fenced, not held…), the
		// grant is definitively gone there.
		s.forgetGrant(name)
		return err
	}
	s.forgetGrant(name)
	return nil
}

// forgetGrant drops name's granting-address pin.
func (s *routedSession) forgetGrant(name string) {
	s.mu.Lock()
	delete(s.grants, name)
	s.mu.Unlock()
}

// Holds asks the granting node whether the session still holds name.
func (s *routedSession) Holds(name string) (bool, error) {
	c, addr, err := s.grantConn(name)
	if err != nil {
		return false, err
	}
	held, err := c.Holds(name)
	if err != nil && errors.Is(err, ErrUnavailable) {
		s.dropSub(addr, c)
	}
	return held, err
}

// Crash abandons name on a throwaway session owned by the client.
func (s *routedSession) Crash(name string) (bool, error) {
	return s.cl.crash(name)
}

// Heartbeat renews the session's leases on every node it has grants
// from, in parallel — the beats are independent round trips to
// independent nodes, and a slow member must not eat the other members'
// renewal margin (serial beats made the effective deadline on the last
// node TTL minus the sum of everyone else's latency). A fenced beat
// (some grant already expired) is reported after every sub has been
// renewed; a sub whose transport broke is dropped — its grants are gone
// with the node, which the next op will discover.
func (s *routedSession) Heartbeat() error {
	s.mu.Lock()
	type pair struct {
		addr string
		c    *Conn
	}
	subs := make([]pair, 0, len(s.subs))
	for addr, c := range s.subs {
		subs = append(subs, pair{addr, c})
	}
	s.mu.Unlock()
	if len(subs) == 1 {
		// One node: no fan-out to pay for.
		if err := subs[0].c.Heartbeat(); err != nil {
			if errors.Is(err, ErrUnavailable) {
				s.dropSub(subs[0].addr, subs[0].c)
				return nil
			}
			return err
		}
		return nil
	}
	var (
		wg       sync.WaitGroup
		errMu    sync.Mutex
		firstErr error
	)
	for _, p := range subs {
		wg.Add(1)
		go func(p pair) {
			defer wg.Done()
			if err := p.c.Heartbeat(); err != nil {
				if errors.Is(err, ErrUnavailable) {
					s.dropSub(p.addr, p.c)
					return
				}
				errMu.Lock()
				if firstErr == nil {
					firstErr = err
				}
				errMu.Unlock()
			}
		}(p)
	}
	wg.Wait()
	return firstErr
}

// AutoHeartbeat starts the renewal ticker on every current and future
// sub-session.
func (s *routedSession) AutoHeartbeat(every time.Duration) {
	s.mu.Lock()
	if s.hbEvery == 0 {
		s.hbEvery = every
	}
	subs := make([]*Conn, 0, len(s.subs))
	for _, c := range s.subs {
		subs = append(subs, c)
	}
	every = s.hbEvery
	s.mu.Unlock()
	for _, c := range subs {
		c.AutoHeartbeat(every)
	}
}

// Ping probes the first answering member.
func (s *routedSession) Ping() error {
	var lastErr error
	for _, addr := range s.cl.opts.Addrs {
		c, err := s.sub(addr)
		if err == nil {
			if err = c.Ping(); err == nil {
				return nil
			}
			if errors.Is(err, ErrUnavailable) {
				s.dropSub(addr, c)
			}
		}
		lastErr = err
	}
	return lastErr
}

// Token reports the fencing token of the session's most recent grant on
// name, whichever node issued it.
func (s *routedSession) Token(name string) uint64 {
	s.mu.Lock()
	c := s.granted[name]
	s.mu.Unlock()
	if c == nil {
		return 0
	}
	return c.Token(name)
}

// closeSubs tears down the session's sub-connections.
func (s *routedSession) closeSubs() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	subs := make([]*Conn, 0, len(s.subs))
	for _, c := range s.subs {
		subs = append(subs, c)
	}
	s.subs = nil
	s.mu.Unlock()
	var first error
	for _, c := range subs {
		if err := c.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// Close ends the session; every node it held grants on releases them.
func (s *routedSession) Close() error {
	err := s.closeSubs()
	s.cl.forget(s)
	return err
}
