package client

// CrashPool manufactures orphaned holders: each Crash dials a fresh
// session, acquires the named lock, and then goes silent — no
// heartbeat, no release, socket deliberately kept open — exactly the
// footprint of a process that took a lock and then hung or was
// SIGKILLed with the connection still in the kernel's hands. On a
// lease-running server the orphan's grant is forcibly revoked one TTL
// later; on a lease-free server the key stays stuck until the pool is
// closed, which is the failure mode the lease subsystem exists to fix.

import (
	"errors"
	"fmt"
	"sync"
	"time"
)

// CrashPool holds crashed sessions' connections alive. Create with
// NewCrashPool; Close tears the corpses down. Its Crash method has the
// loadgen Crasher shape, so a pool slots straight into a workload with
// crash ops.
type CrashPool struct {
	addr string

	// Timeout bounds each crash's acquire (default 10s): a crasher that
	// cannot get the lock within it reports an error instead of
	// stalling the workload behind an already-orphaned key.
	Timeout time.Duration

	mu    sync.Mutex
	conns []*Conn
}

// NewCrashPool makes a pool whose crashed holders dial addr.
func NewCrashPool(addr string) *CrashPool {
	return &CrashPool{addr: addr}
}

// Crash acquires name on a brand-new session and abandons it: the
// session never heartbeats and never releases, but its socket stays
// open (and referenced here, so no finalizer closes it) — the server
// cannot tell the holder is gone until the lease TTL says so. The
// acquire itself waits up to the pool's Timeout for the lock; running
// out of patience reports (false, nil) — the victim died while still
// waiting, which on a crash-heavy hot key (draining at one lease
// expiry per TTL) is an expected outcome, not a failure.
func (p *CrashPool) Crash(name string) (bool, error) {
	timeout := p.Timeout
	if timeout <= 0 {
		timeout = 10 * time.Second
	}
	c, err := DialConn(p.addr)
	if err != nil {
		return false, fmt.Errorf("client: crash %s: %w", name, err)
	}
	ok, err := c.AcquireFor(name, timeout)
	if err != nil || !ok {
		c.Close()
		if err != nil && !errors.Is(err, ErrAborted) {
			return false, fmt.Errorf("client: crash %s: %w", name, err)
		}
		return false, nil
	}
	p.mu.Lock()
	p.conns = append(p.conns, c)
	p.mu.Unlock()
	return true, nil
}

// CrashSession is one client session whose crash ops are served by the
// pool: the full Conn surface (acquire, release, holds, heartbeats)
// plus Crash — exactly the shape a workload with crash ops needs from
// a network backend.
type CrashSession struct {
	*Conn
	pool *CrashPool
}

// Crash abandons name on a fresh session from the pool; the calling
// session's own grants are untouched.
func (s *CrashSession) Crash(name string) (bool, error) { return s.pool.Crash(name) }

// Session dials a fresh connection whose crash ops delegate to the
// pool.
func (p *CrashPool) Session() (*CrashSession, error) {
	c, err := DialConn(p.addr)
	if err != nil {
		return nil, err
	}
	return &CrashSession{Conn: c, pool: p}, nil
}

// Wrap gives an existing connection (for example a multiplexed stream
// from a MuxPool) the pool's crash surface.
func (p *CrashPool) Wrap(c *Conn) *CrashSession {
	return &CrashSession{Conn: c, pool: p}
}

// Crashed reports how many holders the pool has abandoned so far.
func (p *CrashPool) Crashed() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.conns)
}

// Close finally closes every crashed holder's socket.
func (p *CrashPool) Close() {
	p.mu.Lock()
	conns := p.conns
	p.conns = nil
	p.mu.Unlock()
	for _, c := range conns {
		c.Close()
	}
}
