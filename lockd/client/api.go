package client

// The unified front door: one Dial(Options) constructor behind which
// every transport shape — newline-JSON one-socket-per-session, binary
// multiplexed streams, and multi-address cluster routing — presents the
// same two interfaces. Callers that used to switch between Conn, Mux,
// and CrashPool per configuration hold a Client and open Sessions; the
// options decide what runs underneath.

import (
	"errors"
	"fmt"
	"strings"
	"time"

	"anonmutex/lockd"
)

// ErrUnavailable marks an operation that failed because the transport
// did — the connection broke, the dial was refused, the server went
// away mid-exchange. It says nothing about the lock: the op may or may
// not have executed. The routed client retries these against other
// cluster members; single-node callers test with errors.Is to separate
// a dead server from a protocol-level rejection.
var ErrUnavailable = errors.New("client: server unavailable")

// RedirectError is a clustered server's wrong-owner rejection: the key
// is owned by another node, whose lock-service address is Owner. Epoch
// is the membership epoch the redirect was computed under, so a cache
// can discard stale redirects after the view moves on. The routed
// client consumes redirects itself; they surface only when redirect
// hops are exhausted or a non-routing Conn is used against a cluster.
type RedirectError struct {
	Name  string
	Owner string
	Epoch uint64
}

func (e *RedirectError) Error() string {
	return fmt.Sprintf("client: wrong owner for %q: try %s (epoch %d)", e.Name, e.Owner, e.Epoch)
}

// Session is one logical lock-holding session: the capability surface
// the load generator, the chaos harness, and the experiments all drive.
// Every constructor shape — direct connection, multiplexed stream,
// routed cluster session — returns one. A Session belongs to one
// goroutine of workload, but its methods are individually safe for
// concurrent use (pipelined on the shared transport).
type Session interface {
	// Acquire blocks until the session holds name (ErrAborted if the
	// attempt was cancelled or capped server-side).
	Acquire(name string) error
	// AcquireFor bounds the attempt: expiry withdraws cleanly and
	// reports (false, nil).
	AcquireFor(name string, d time.Duration) (bool, error)
	// TryAcquire reports whether the lock was free and is now held.
	TryAcquire(name string) (bool, error)
	// Release gives a held name back.
	Release(name string) error
	// Holds asks the server whether this session holds name.
	Holds(name string) (bool, error)
	// Crash acquires name on a throwaway session that then goes silent
	// holding it — the deliberate orphan lease recovery is tested with.
	Crash(name string) (bool, error)
	// Heartbeat renews every lease the session holds once; ErrFenced
	// (wrapped) if any grant had already expired.
	Heartbeat() error
	// AutoHeartbeat starts a background renewal ticker (idempotent).
	AutoHeartbeat(every time.Duration)
	// Ping probes liveness.
	Ping() error
	// Token reports the fencing token of the session's most recent
	// grant on name (0 before any, or on a lease-free server).
	Token(name string) uint64
	// Close ends the session; the server releases what it still holds.
	Close() error
}

// Client is a handle on a lock service — one server or a whole cluster.
// Open hands out independent Sessions; Close tears down everything the
// client owns (sessions, pooled sockets, crash corpses).
type Client interface {
	Open() (Session, error)
	// Stats sums counter snapshots across every reachable address.
	Stats() (lockd.Stats, error)
	Close() error
}

// Protocol names for Options.Proto.
const (
	// ProtoJSON is the newline-JSON protocol: one socket per session.
	ProtoJSON = "json"
	// ProtoBinary is the length-prefixed framed protocol: sessions are
	// streams multiplexed ConnsPerSocket to a socket.
	ProtoBinary = "binary"
)

// Options configures Dial. The zero value of every field is usable;
// only Addrs is required.
type Options struct {
	// Addrs lists the lock-service addresses. One address is a
	// single-node client; several make a routed cluster client that
	// follows wrong_owner redirects, caches key ownership per
	// membership epoch, and retries unavailable nodes against the rest.
	Addrs []string

	// Proto selects the wire protocol: ProtoJSON (default) or
	// ProtoBinary.
	Proto string

	// ConnsPerSocket packs this many logical sessions onto each binary
	// socket (min 1). Setting it implies ProtoBinary.
	ConnsPerSocket int

	// Heartbeat, when positive, starts every opened session's
	// auto-heartbeat ticker at this interval.
	Heartbeat time.Duration

	// CrashTimeout bounds each Crash op's acquire (default 10s).
	CrashTimeout time.Duration

	// MaxRedirects bounds how many wrong_owner redirects one operation
	// will follow before giving up (default 3).
	MaxRedirects int

	// RetryBackoff is the base delay between retries after an
	// unavailable node (default 10ms). Each retry doubles the delay,
	// jittered uniformly over [d/2, d], up to RetryBackoffMax — so a
	// fleet of clients hammering a restarting server spreads out
	// instead of retrying in lockstep.
	RetryBackoff time.Duration

	// RetryBackoffMax caps the exponential retry delay (default 1s).
	RetryBackoffMax time.Duration

	// MaxAttempts bounds how many times one acquire-type op is retried
	// against the cluster before the last error surfaces (default
	// 2×len(Addrs)+2; redirect hops are budgeted separately by
	// MaxRedirects).
	MaxAttempts int
}

// withDefaults validates and fills in the option defaults.
func (o Options) withDefaults() (Options, error) {
	if len(o.Addrs) == 0 {
		return o, errors.New("client: Dial needs at least one address")
	}
	for _, a := range o.Addrs {
		if strings.TrimSpace(a) == "" {
			return o, errors.New("client: Dial got an empty address")
		}
	}
	if o.ConnsPerSocket < 0 {
		return o, fmt.Errorf("client: negative ConnsPerSocket %d", o.ConnsPerSocket)
	}
	switch o.Proto {
	case "":
		if o.ConnsPerSocket > 0 {
			o.Proto = ProtoBinary
		} else {
			o.Proto = ProtoJSON
		}
	case ProtoJSON:
		if o.ConnsPerSocket > 0 {
			return o, errors.New("client: ConnsPerSocket multiplexes the binary protocol; it cannot be combined with Proto json")
		}
	case ProtoBinary:
	default:
		return o, fmt.Errorf("client: unknown Proto %q (want %s or %s)", o.Proto, ProtoJSON, ProtoBinary)
	}
	if o.Proto == ProtoBinary && o.ConnsPerSocket == 0 {
		o.ConnsPerSocket = 1
	}
	if o.CrashTimeout <= 0 {
		o.CrashTimeout = 10 * time.Second
	}
	if o.MaxRedirects <= 0 {
		o.MaxRedirects = 3
	}
	if o.RetryBackoff <= 0 {
		o.RetryBackoff = 10 * time.Millisecond
	}
	if o.RetryBackoffMax <= 0 {
		o.RetryBackoffMax = time.Second
	}
	if o.RetryBackoffMax < o.RetryBackoff {
		o.RetryBackoffMax = o.RetryBackoff
	}
	if o.MaxAttempts <= 0 {
		o.MaxAttempts = 2*len(o.Addrs) + 2
	}
	return o, nil
}

// Dial opens a client on a lock service. It does not connect eagerly:
// sockets are dialed as sessions first need them, so a cluster client
// can be constructed while some members are still down.
func Dial(opts Options) (Client, error) {
	opts, err := opts.withDefaults()
	if err != nil {
		return nil, err
	}
	return newPoolClient(opts), nil
}
