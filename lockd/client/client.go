// Package client is the Go client for the lockd network lock service:
// one Conn per session, typed methods over the wire protocol defined in
// the lockd package.
//
// Requests are pipelined: any goroutine may issue a request while others
// are waiting for responses, and a dedicated reader matches the server's
// in-order responses to their callers. That is what makes Cancel useful —
// it can chase an Acquire that is blocked on the same session — and what
// lets one connection carry overlapping traffic. Locks held by the
// session are released by the server when the connection closes.
package client

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"anonmutex/lockd"
)

// ErrAborted is returned by Acquire when the attempt was abandoned —
// cancelled by Cancel, expired server-side, or capped by the server's
// maximum wait — after withdrawing cleanly. AcquireFor reports the same
// outcome as (false, nil) instead.
var ErrAborted = errors.New("client: acquire aborted")

// result is one matched response.
type result struct {
	resp lockd.Response
	err  error
}

// Conn is one client session. Methods are safe for concurrent use and
// pipeline over the single connection.
type Conn struct {
	c net.Conn

	// sendMu serializes writes and queue pushes, so the response queue
	// order always matches the request order on the wire.
	sendMu sync.Mutex

	mu     sync.Mutex
	queue  []chan result // FIFO of callers awaiting responses
	broken error         // set once the reader stops
}

// Dial connects to a lockd server.
func Dial(addr string) (*Conn, error) {
	c, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("client: dialing lockd at %s: %w", addr, err)
	}
	conn := &Conn{c: c}
	go conn.readLoop()
	return conn, nil
}

// readLoop owns the inbound half: it reads response lines and hands each
// to the oldest waiting caller. Any read or decode failure breaks the
// session: every waiter (and every later request) gets the error.
func (c *Conn) readLoop() {
	r := bufio.NewReader(c.c)
	for {
		line, err := r.ReadBytes('\n')
		if err != nil {
			c.fail(fmt.Errorf("client: session broken: %w", err))
			return
		}
		var resp lockd.Response
		if err := json.Unmarshal(line, &resp); err != nil {
			c.fail(fmt.Errorf("client: bad response: %w", err))
			return
		}
		c.mu.Lock()
		if len(c.queue) == 0 {
			c.mu.Unlock()
			c.fail(fmt.Errorf("client: response with no request in flight"))
			return
		}
		ch := c.queue[0]
		c.queue = c.queue[1:]
		c.mu.Unlock()
		ch <- result{resp: resp}
	}
}

// fail breaks the session: all waiters are unblocked with err and later
// requests fail fast.
func (c *Conn) fail(err error) {
	c.mu.Lock()
	if c.broken == nil {
		c.broken = err
	}
	waiters := c.queue
	c.queue = nil
	c.mu.Unlock()
	for _, ch := range waiters {
		ch <- result{err: err}
	}
}

// do executes one request/response exchange, waiting its turn in the
// response order.
func (c *Conn) do(req lockd.Request) (lockd.Response, error) {
	buf, err := json.Marshal(req)
	if err != nil {
		return lockd.Response{}, err
	}
	ch := make(chan result, 1)
	c.sendMu.Lock()
	c.mu.Lock()
	if c.broken != nil {
		err := c.broken
		c.mu.Unlock()
		c.sendMu.Unlock()
		return lockd.Response{}, fmt.Errorf("%s: %w", req.Op, err)
	}
	c.queue = append(c.queue, ch)
	c.mu.Unlock()
	_, werr := c.c.Write(append(buf, '\n'))
	c.sendMu.Unlock()
	if werr != nil {
		// The reader will observe the broken connection and deliver the
		// failure to every queued waiter, including this one.
		c.c.Close()
	}
	res := <-ch
	if res.err != nil {
		return lockd.Response{}, fmt.Errorf("client: %s: %w", req.Op, res.err)
	}
	if !res.resp.OK {
		return res.resp, fmt.Errorf("client: %s: %s", req.Op, res.resp.Err)
	}
	return res.resp, nil
}

// Acquire blocks until the session holds the named lock, or returns
// ErrAborted if the attempt was cancelled or capped server-side.
func (c *Conn) Acquire(name string) error {
	resp, err := c.do(lockd.Request{Op: lockd.OpAcquire, Name: name})
	if err != nil {
		return err
	}
	if resp.Aborted {
		return fmt.Errorf("%w: %s", ErrAborted, name)
	}
	return nil
}

// AcquireFor tries to acquire the named lock within timeout, reporting
// whether the session now holds it. Expiry (or a chasing Cancel) is not
// an error: the server withdraws the waiter cleanly and AcquireFor
// returns (false, nil).
func (c *Conn) AcquireFor(name string, timeout time.Duration) (bool, error) {
	req := lockd.Request{Op: lockd.OpAcquire, Name: name, TimeoutMS: int64(timeout / time.Millisecond)}
	if timeout > 0 && req.TimeoutMS == 0 {
		req.TimeoutMS = 1 // round sub-millisecond deadlines up, not to "forever"
	}
	resp, err := c.do(req)
	if err != nil {
		return false, err
	}
	return resp.Acquired, nil
}

// Cancel aborts the session's in-flight acquire — or, if none is in
// flight yet, the session's next one (the cancellation is remembered
// server-side, closing the race with a pipelined Acquire). With name ""
// it matches any acquire.
func (c *Conn) Cancel(name string) error {
	_, err := c.do(lockd.Request{Op: lockd.OpCancel, Name: name})
	return err
}

// TryAcquire reports whether the lock was available and is now held.
func (c *Conn) TryAcquire(name string) (bool, error) {
	resp, err := c.do(lockd.Request{Op: lockd.OpTryAcquire, Name: name})
	if err != nil {
		return false, err
	}
	return resp.Acquired, nil
}

// Release gives a held lock back.
func (c *Conn) Release(name string) error {
	_, err := c.do(lockd.Request{Op: lockd.OpRelease, Name: name})
	return err
}

// Holds reports whether this session holds the named lock according to
// the server — the owner check issued inside a critical section.
func (c *Conn) Holds(name string) (bool, error) {
	resp, err := c.do(lockd.Request{Op: lockd.OpHolds, Name: name})
	if err != nil {
		return false, err
	}
	return resp.Holds, nil
}

// Stats fetches the server's counter snapshot.
func (c *Conn) Stats() (lockd.Stats, error) {
	resp, err := c.do(lockd.Request{Op: lockd.OpStats})
	if err != nil {
		return lockd.Stats{}, err
	}
	if resp.Stats == nil {
		return lockd.Stats{}, fmt.Errorf("client: stats: empty response")
	}
	return *resp.Stats, nil
}

// Ping probes liveness.
func (c *Conn) Ping() error {
	_, err := c.do(lockd.Request{Op: lockd.OpPing})
	return err
}

// Close ends the session; the server releases any locks it still holds
// and reaps any acquire still in flight.
func (c *Conn) Close() error { return c.c.Close() }
