// Package client is the Go client for the lockd network lock service:
// one Conn per session, typed methods over the wire protocol defined in
// the lockd package.
//
// Requests are pipelined: any goroutine may issue a request while others
// are waiting for responses, and a dedicated reader matches the server's
// in-order responses to their callers. That is what makes Cancel useful —
// it can chase an Acquire that is blocked on the same session — and what
// lets one connection carry overlapping traffic. Locks held by the
// session are released by the server when the connection closes.
//
// The hot path mirrors the server's: requests are encoded by the
// lockd wire codec into a per-connection buffer, responses are decoded
// without reflection, and the per-request bookkeeping (the waiter slot a
// response is matched to) is pooled — a steady-state AcquireFor/Release
// cycle performs no heap allocations on the client.
package client

import (
	"bufio"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"anonmutex/lockd"
)

// ErrAborted is returned by Acquire when the attempt was abandoned —
// cancelled by Cancel, expired server-side, or capped by the server's
// maximum wait — after withdrawing cleanly. AcquireFor reports the same
// outcome as (false, nil) instead.
var ErrAborted = errors.New("client: acquire aborted")

// ErrFenced marks an operation rejected because the session's lease on
// the lock expired or was revoked: its fencing token is stale and the
// lock may already be held by a successor. Returned (wrapped) by any
// op the server answers with fenced=true — typically a release or
// heartbeat issued after the holder paused past the lease TTL. Test
// with errors.Is.
var ErrFenced = errors.New("client: fenced: stale lease token")

// result is one matched response.
type result struct {
	resp lockd.Response
	err  error
}

// waiterPool recycles the response-matching channels so a request does
// not allocate one. Each channel is buffered and receives exactly one
// result per checkout, so a recycled channel is always empty.
var waiterPool = sync.Pool{
	New: func() any { return make(chan result, 1) },
}

// Conn is one client session. Methods are safe for concurrent use and
// pipeline over the single connection. A Conn is either a whole dialed
// connection speaking newline-JSON (Dial/NewConn) or one logical stream
// of a multiplexed binary connection (Mux.Open) — the API is identical.
type Conn struct {
	c net.Conn

	// mux and stream identify a logical session multiplexed on a shared
	// socket; c is nil then, and all I/O goes through the mux.
	mux    *Mux
	stream uint32

	// sendMu serializes writes and queue pushes, so the response queue
	// order always matches the request order on the wire. It also guards
	// wbuf, the reused encode buffer.
	sendMu sync.Mutex
	wbuf   []byte

	mu     sync.Mutex
	queue  []chan result // FIFO of callers awaiting responses
	qhead  int           // first live entry; backing array is reused
	broken error         // set once the reader stops

	// tokMu guards tokens, the fencing token of the session's most
	// recent grant per name — the client-side view the cluster failover
	// property tests compare across ownership changes.
	tokMu  sync.Mutex
	tokens map[string]uint64

	// hbMu guards the auto-heartbeat ticker; hbPaused suspends it
	// without tearing it down (chaos tests simulate a stalled holder
	// this way).
	hbMu     sync.Mutex
	hbStop   chan struct{}
	hbPaused atomic.Bool
}

// DialConn connects to a lockd server as one newline-JSON session.
// For the address-list front door (routing, redirects, crash ops behind
// one interface) use Dial.
func DialConn(addr string) (*Conn, error) {
	c, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("client: dialing lockd at %s: %w: %w", addr, ErrUnavailable, err)
	}
	return NewConn(c), nil
}

// NewConn wraps an already-established connection — a TCP or unix socket
// the caller dialed itself, or one end of a net.Pipe for in-process use —
// as a client session. The Conn takes ownership of c.
func NewConn(c net.Conn) *Conn {
	conn := &Conn{c: c}
	go conn.readLoop()
	return conn
}

// readLoop owns the inbound half: it reads response lines and hands each
// to the oldest waiting caller. Any read or decode failure breaks the
// session: every waiter (and every later request) gets the error.
func (c *Conn) readLoop() {
	br := bufio.NewReader(c.c)
	var scratch []byte
	for {
		line, err := br.ReadSlice('\n')
		if err == bufio.ErrBufferFull {
			// A long response (an error echoing a long name): accumulate.
			scratch = append(scratch[:0], line...)
			for err == bufio.ErrBufferFull {
				line, err = br.ReadSlice('\n')
				scratch = append(scratch, line...)
			}
			line = scratch
		}
		if err != nil {
			c.fail(fmt.Errorf("client: session broken: %w", err))
			return
		}
		var res result
		if derr := lockd.DecodeResponse(line[:len(line)-1], &res.resp); derr != nil {
			c.fail(fmt.Errorf("client: bad response: %w", derr))
			return
		}
		c.mu.Lock()
		if c.qhead == len(c.queue) {
			c.mu.Unlock()
			c.fail(fmt.Errorf("client: response with no request in flight"))
			return
		}
		ch := c.queue[c.qhead]
		c.queue[c.qhead] = nil
		c.qhead++
		if c.qhead == len(c.queue) {
			c.queue = c.queue[:0]
			c.qhead = 0
		}
		c.mu.Unlock()
		ch <- res
	}
}

// fail breaks the session: all waiters are unblocked with err and later
// requests fail fast.
func (c *Conn) fail(err error) {
	c.mu.Lock()
	if c.broken == nil {
		c.broken = err
	}
	waiters := c.queue[c.qhead:]
	c.queue = nil
	c.qhead = 0
	c.mu.Unlock()
	for _, ch := range waiters {
		ch <- result{err: err}
	}
}

// do executes one request/response exchange, waiting its turn in the
// response order.
func (c *Conn) do(req lockd.Request) (lockd.Response, error) {
	if c.mux != nil {
		return c.mux.do(c, req)
	}
	ch := waiterPool.Get().(chan result)
	c.sendMu.Lock()
	c.mu.Lock()
	if c.broken != nil {
		err := c.broken
		c.mu.Unlock()
		c.sendMu.Unlock()
		waiterPool.Put(ch)
		return lockd.Response{}, fmt.Errorf("client: %s: %w: %w", req.Op, ErrUnavailable, err)
	}
	c.queue = append(c.queue, ch)
	c.mu.Unlock()
	c.wbuf = lockd.AppendRequest(c.wbuf[:0], &req)
	c.wbuf = append(c.wbuf, '\n')
	_, werr := c.c.Write(c.wbuf)
	c.sendMu.Unlock()
	if werr != nil {
		// The reader will observe the broken connection and deliver the
		// failure to every queued waiter, including this one.
		c.c.Close()
	}
	res := <-ch
	waiterPool.Put(ch)
	return finishResult(req, res)
}

// finishResult classifies one matched exchange into the client's error
// vocabulary, shared by the direct and multiplexed paths: transport
// failures wrap ErrUnavailable, wrong-owner rejections wrap a
// *RedirectError carrying the owner's address, fenced rejections wrap
// ErrFenced.
func finishResult(req lockd.Request, res result) (lockd.Response, error) {
	if res.err != nil {
		return lockd.Response{}, fmt.Errorf("client: %s: %w: %w", req.Op, ErrUnavailable, res.err)
	}
	if !res.resp.OK {
		if res.resp.WrongOwner {
			return res.resp, fmt.Errorf("client: %s: %w",
				req.Op, &RedirectError{Name: req.Name, Owner: res.resp.Owner, Epoch: res.resp.Epoch})
		}
		if res.resp.Fenced {
			return res.resp, fmt.Errorf("client: %s: %s: %w", req.Op, res.resp.Err, ErrFenced)
		}
		return res.resp, fmt.Errorf("client: %s: %s", req.Op, res.resp.Err)
	}
	return res.resp, nil
}

// noteToken records the fencing token of a fresh grant on name.
func (c *Conn) noteToken(name string, token uint64) {
	c.tokMu.Lock()
	if c.tokens == nil {
		c.tokens = make(map[string]uint64)
	}
	c.tokens[name] = token
	c.tokMu.Unlock()
}

// Token reports the fencing token of the session's most recent grant on
// name (0 before any grant, and always 0 on a lease-free server). It is
// not cleared by Release: it answers "what was the last token this
// session was granted for name", which is the quantity cluster-failover
// monotonicity is asserted over.
func (c *Conn) Token(name string) uint64 {
	c.tokMu.Lock()
	defer c.tokMu.Unlock()
	return c.tokens[name]
}

// doAcquire runs one acquire-type exchange, recording the fencing token
// when a grant came back, and returns the raw response — the routing
// layer reads owner hints (and Aborted/Acquired) off it directly.
func (c *Conn) doAcquire(req lockd.Request) (lockd.Response, error) {
	resp, err := c.do(req)
	if err == nil && resp.Acquired {
		c.noteToken(req.Name, resp.Token)
	}
	return resp, err
}

// acquireForRequest builds AcquireFor's wire request, rounding
// sub-millisecond deadlines up to 1ms rather than down to "forever".
func acquireForRequest(name string, timeout time.Duration) lockd.Request {
	req := lockd.Request{Op: lockd.OpAcquire, Name: name, TimeoutMS: int64(timeout / time.Millisecond)}
	if timeout > 0 && req.TimeoutMS == 0 {
		req.TimeoutMS = 1
	}
	return req
}

// Acquire blocks until the session holds the named lock, or returns
// ErrAborted if the attempt was cancelled or capped server-side.
func (c *Conn) Acquire(name string) error {
	resp, err := c.doAcquire(lockd.Request{Op: lockd.OpAcquire, Name: name})
	if err != nil {
		return err
	}
	if resp.Aborted {
		return fmt.Errorf("%w: %s", ErrAborted, name)
	}
	return nil
}

// AcquireFor tries to acquire the named lock within timeout, reporting
// whether the session now holds it. Expiry (or a chasing Cancel) is not
// an error: the server withdraws the waiter cleanly and AcquireFor
// returns (false, nil).
func (c *Conn) AcquireFor(name string, timeout time.Duration) (bool, error) {
	resp, err := c.doAcquire(acquireForRequest(name, timeout))
	return resp.Acquired, err
}

// Cancel aborts the session's in-flight acquire — or, if none is in
// flight yet, the session's next one (the cancellation is remembered
// server-side, closing the race with a pipelined Acquire). With name ""
// it matches any acquire.
func (c *Conn) Cancel(name string) error {
	_, err := c.do(lockd.Request{Op: lockd.OpCancel, Name: name})
	return err
}

// TryAcquire reports whether the lock was available and is now held.
func (c *Conn) TryAcquire(name string) (bool, error) {
	resp, err := c.doAcquire(lockd.Request{Op: lockd.OpTryAcquire, Name: name})
	return resp.Acquired, err
}

// Release gives a held lock back.
func (c *Conn) Release(name string) error {
	_, err := c.do(lockd.Request{Op: lockd.OpRelease, Name: name})
	return err
}

// Holds reports whether this session holds the named lock according to
// the server — the owner check issued inside a critical section.
func (c *Conn) Holds(name string) (bool, error) {
	resp, err := c.do(lockd.Request{Op: lockd.OpHolds, Name: name})
	if err != nil {
		return false, err
	}
	return resp.Holds, nil
}

// Stats fetches the server's counter snapshot.
func (c *Conn) Stats() (lockd.Stats, error) {
	resp, err := c.do(lockd.Request{Op: lockd.OpStats})
	if err != nil {
		return lockd.Stats{}, err
	}
	if resp.Stats == nil {
		return lockd.Stats{}, fmt.Errorf("client: stats: empty response")
	}
	return *resp.Stats, nil
}

// Ping probes liveness.
func (c *Conn) Ping() error {
	_, err := c.do(lockd.Request{Op: lockd.OpPing})
	return err
}

// Heartbeat renews every lease the session holds. On a server without
// leases it is an acknowledged no-op. It returns ErrFenced (wrapped) if
// any grant's lease had already expired — the session no longer holds
// that lock.
func (c *Conn) Heartbeat() error {
	resp, err := c.do(lockd.Request{Op: lockd.OpHeartbeat})
	if err != nil {
		return err
	}
	if resp.Fenced {
		return fmt.Errorf("client: heartbeat: %w", ErrFenced)
	}
	return nil
}

// AutoHeartbeat starts a background ticker that renews the session's
// leases every interval — set it under half the server's lease TTL.
// Safe to call on a server without leases (each beat is a cheap no-op);
// idempotent while a ticker is already running. The ticker stops itself
// when the session breaks, and Close stops it too.
func (c *Conn) AutoHeartbeat(every time.Duration) {
	c.hbMu.Lock()
	defer c.hbMu.Unlock()
	if c.hbStop != nil {
		return
	}
	stop := make(chan struct{})
	c.hbStop = stop
	go func() {
		t := time.NewTicker(every)
		defer t.Stop()
		for {
			select {
			case <-stop:
				return
			case <-t.C:
				if c.hbPaused.Load() {
					continue
				}
				// A fenced beat is survivable (only stale grants were
				// dropped); a transport error means the session is dead
				// and the ticker with it.
				if err := c.Heartbeat(); err != nil && !errors.Is(err, ErrFenced) {
					return
				}
			}
		}
	}()
}

// PauseHeartbeat suspends the auto-heartbeat ticker without stopping
// it: the session keeps its grants but stops renewing them, so on a
// lease-running server they expire after one TTL. This is how a crashed
// or stalled holder is simulated deliberately.
func (c *Conn) PauseHeartbeat() { c.hbPaused.Store(true) }

// ResumeHeartbeat re-enables a paused auto-heartbeat ticker.
func (c *Conn) ResumeHeartbeat() { c.hbPaused.Store(false) }

// StopHeartbeat stops the auto-heartbeat ticker, if one is running.
func (c *Conn) StopHeartbeat() {
	c.hbMu.Lock()
	if c.hbStop != nil {
		close(c.hbStop)
		c.hbStop = nil
	}
	c.hbMu.Unlock()
}

// Close ends the session; the server releases any locks it still holds
// and reaps any acquire still in flight. On a mux stream it retires just
// this stream (waiting for the server's ack) and leaves the shared
// socket up; do not issue or pipeline requests concurrently with Close.
func (c *Conn) Close() error {
	c.StopHeartbeat()
	if c.mux != nil {
		return c.mux.closeStream(c)
	}
	return c.c.Close()
}

// Batch executes len(reqs) requests as one coalesced write — one frame
// on a mux stream, one buffer of lines on a direct connection — and
// fills resps (which must be the same length) with the matched
// responses, in order. It returns only transport errors: per-request
// failures are left in each Response for the caller to inspect. A
// pipelined acquire+release pair through Batch costs one round trip.
func (c *Conn) Batch(reqs []lockd.Request, resps []lockd.Response) error {
	if len(reqs) != len(resps) {
		return fmt.Errorf("client: batch: %d requests but %d response slots", len(reqs), len(resps))
	}
	if len(reqs) == 0 {
		return nil
	}
	var ch chan result
	pooled := len(reqs) <= batchPoolCap
	if pooled {
		ch = batchPool.Get().(chan result)
	} else {
		ch = make(chan result, len(reqs))
	}
	var err error
	if c.mux != nil {
		err = c.mux.send(c, reqs, ch)
	} else {
		err = c.sendBatch(reqs, ch)
	}
	if err != nil {
		if pooled {
			batchPool.Put(ch)
		}
		return fmt.Errorf("client: batch: %w", err)
	}
	var firstErr error
	for i := range resps {
		res := <-ch
		if res.err != nil && firstErr == nil {
			firstErr = res.err
		}
		resps[i] = res.resp
	}
	if pooled {
		batchPool.Put(ch) // fully drained: len(reqs) sends, len(reqs) receives
	}
	if firstErr != nil {
		return fmt.Errorf("client: batch: %w", firstErr)
	}
	return nil
}

// sendBatch is the direct-connection half of Batch: all lines in one
// Write, ch registered once per request.
func (c *Conn) sendBatch(reqs []lockd.Request, ch chan result) error {
	c.sendMu.Lock()
	c.mu.Lock()
	if c.broken != nil {
		err := c.broken
		c.mu.Unlock()
		c.sendMu.Unlock()
		return err
	}
	for range reqs {
		c.queue = append(c.queue, ch)
	}
	c.mu.Unlock()
	c.wbuf = c.wbuf[:0]
	for i := range reqs {
		c.wbuf = lockd.AppendRequest(c.wbuf, &reqs[i])
		c.wbuf = append(c.wbuf, '\n')
	}
	_, werr := c.c.Write(c.wbuf)
	c.sendMu.Unlock()
	if werr != nil {
		c.c.Close()
	}
	return nil
}
