// Package client is the Go client for the lockd network lock service:
// one Conn per session, synchronous request/response, typed methods over
// the wire protocol defined in the lockd package.
package client

import (
	"bufio"
	"encoding/json"
	"fmt"
	"net"
	"sync"

	"anonmutex/lockd"
)

// Conn is one client session. Methods are safe for concurrent use but
// execute one request at a time; locks held by the session are released
// by the server when the connection closes.
type Conn struct {
	mu sync.Mutex
	c  net.Conn
	r  *bufio.Reader
}

// Dial connects to a lockd server.
func Dial(addr string) (*Conn, error) {
	c, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("client: dialing lockd at %s: %w", addr, err)
	}
	return &Conn{c: c, r: bufio.NewReader(c)}, nil
}

// do executes one request/response exchange.
func (c *Conn) do(req lockd.Request) (lockd.Response, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	buf, err := json.Marshal(req)
	if err != nil {
		return lockd.Response{}, err
	}
	if _, err := c.c.Write(append(buf, '\n')); err != nil {
		return lockd.Response{}, fmt.Errorf("client: %s: %w", req.Op, err)
	}
	line, err := c.r.ReadBytes('\n')
	if err != nil {
		return lockd.Response{}, fmt.Errorf("client: %s: %w", req.Op, err)
	}
	var resp lockd.Response
	if err := json.Unmarshal(line, &resp); err != nil {
		return lockd.Response{}, fmt.Errorf("client: %s: bad response: %w", req.Op, err)
	}
	if !resp.OK {
		return resp, fmt.Errorf("client: %s: %s", req.Op, resp.Err)
	}
	return resp, nil
}

// Acquire blocks until the session holds the named lock.
func (c *Conn) Acquire(name string) error {
	_, err := c.do(lockd.Request{Op: lockd.OpAcquire, Name: name})
	return err
}

// TryAcquire reports whether the lock was available and is now held.
func (c *Conn) TryAcquire(name string) (bool, error) {
	resp, err := c.do(lockd.Request{Op: lockd.OpTryAcquire, Name: name})
	if err != nil {
		return false, err
	}
	return resp.Acquired, nil
}

// Release gives a held lock back.
func (c *Conn) Release(name string) error {
	_, err := c.do(lockd.Request{Op: lockd.OpRelease, Name: name})
	return err
}

// Holds reports whether this session holds the named lock according to
// the server — the owner check issued inside a critical section.
func (c *Conn) Holds(name string) (bool, error) {
	resp, err := c.do(lockd.Request{Op: lockd.OpHolds, Name: name})
	if err != nil {
		return false, err
	}
	return resp.Holds, nil
}

// Stats fetches the server's counter snapshot.
func (c *Conn) Stats() (lockd.Stats, error) {
	resp, err := c.do(lockd.Request{Op: lockd.OpStats})
	if err != nil {
		return lockd.Stats{}, err
	}
	if resp.Stats == nil {
		return lockd.Stats{}, fmt.Errorf("client: stats: empty response")
	}
	return *resp.Stats, nil
}

// Ping probes liveness.
func (c *Conn) Ping() error {
	_, err := c.do(lockd.Request{Op: lockd.OpPing})
	return err
}

// Close ends the session; the server releases any locks it still holds.
func (c *Conn) Close() error { return c.c.Close() }
