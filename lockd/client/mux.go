package client

// Mux multiplexes many logical sessions over one socket using lockd's
// binary framed protocol: each Open() returns a *Conn that behaves
// exactly like a dialed connection — same methods, same pipelining, same
// Cancel semantics — but shares the underlying TCP connection with its
// siblings. Frames from concurrent streams coalesce into single writes
// (the last writer in a convoy pays the flush), and one reader goroutine
// demultiplexes response frames back to per-stream FIFO queues, so a
// cancelled or blocked stream never desyncs its siblings.

import (
	"bufio"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"

	"anonmutex/lockd"
)

// errStreamClosed fails requests issued on a mux stream after Close.
var errStreamClosed = errors.New("stream closed")

// batchPool recycles the multi-response channels Batch matches its
// responses on; sized for the common small batch.
const batchPoolCap = 16

var batchPool = sync.Pool{
	New: func() any { return make(chan result, batchPoolCap) },
}

// Mux is one binary-protocol connection carrying many logical sessions.
// Create with DialMux or NewMux, open sessions with Open, tear the whole
// socket down with Close.
type Mux struct {
	c  net.Conn
	bw *bufio.Writer

	// waiters counts senders en route to sendMu; a sender flushes only
	// when it is the last one, so a burst of concurrent requests across
	// streams costs one syscall.
	waiters atomic.Int32
	// sendMu serializes frame writes and queue pushes (order on the wire
	// must match each stream's queue order) and guards wbuf.
	sendMu sync.Mutex
	wbuf   []byte

	mu      sync.Mutex
	streams map[uint32]*Conn
	nextID  uint32
	broken  error
}

// DialMux connects to a lockd server and negotiates the binary framed
// protocol.
func DialMux(addr string) (*Mux, error) {
	c, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("client: dialing lockd at %s: %w", addr, err)
	}
	return NewMux(c), nil
}

// NewMux wraps an already-established connection as a binary multiplexed
// client. The Mux takes ownership of c and immediately stakes the
// protocol claim: the magic preamble — v4, so responses may carry
// fencing tokens, TTLs, the fenced bit, cluster wrong-owner redirects,
// and proxy-mode owner hints — is buffered ahead of the first frame
// (the server reads it before anything else).
func NewMux(c net.Conn) *Mux {
	m := &Mux{c: c, bw: bufio.NewWriter(c), streams: make(map[uint32]*Conn)}
	m.bw.Write(lockd.BinaryMagicV4[:])
	go m.readLoop()
	return m
}

// Open starts a new logical session on the mux. The returned Conn
// supports the full client API; Close retires just this stream (the
// server releases its grants) and leaves the socket up for its siblings.
func (m *Mux) Open() (*Conn, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.broken != nil {
		return nil, fmt.Errorf("client: open stream: %w: %w", ErrUnavailable, m.broken)
	}
	m.nextID++
	st := &Conn{mux: m, stream: m.nextID}
	m.streams[st.stream] = st
	return st, nil
}

// Close tears down the socket: every stream and every in-flight request
// fails, and the server reaps every stream's grants.
func (m *Mux) Close() error {
	return m.c.Close()
}

// send encodes reqs as one frame on st's stream and registers ch to
// receive len(reqs) responses, in order. It never partially registers:
// on any error nothing was queued and nothing was written.
func (m *Mux) send(st *Conn, reqs []lockd.Request, ch chan result) error {
	m.waiters.Add(1)
	m.sendMu.Lock()
	m.waiters.Add(-1)
	m.wbuf = lockd.BeginFrame(m.wbuf[:0], st.stream)
	var err error
	for i := range reqs {
		if m.wbuf, err = lockd.AppendRequestBin(m.wbuf, &reqs[i]); err != nil {
			m.flushIfLast()
			m.sendMu.Unlock()
			return err
		}
	}
	m.wbuf = lockd.EndFrame(m.wbuf, 0)
	st.mu.Lock()
	if st.broken != nil {
		err = fmt.Errorf("%w: %w", ErrUnavailable, st.broken)
		st.mu.Unlock()
		m.flushIfLast()
		m.sendMu.Unlock()
		return err
	}
	for range reqs {
		st.queue = append(st.queue, ch)
	}
	st.mu.Unlock()
	_, werr := m.bw.Write(m.wbuf)
	if werr == nil && m.waiters.Load() == 0 {
		werr = m.bw.Flush()
	}
	m.sendMu.Unlock()
	if werr != nil {
		// The reader will observe the broken connection and deliver the
		// failure to every queued waiter, including this one.
		m.c.Close()
	}
	return nil
}

// flushIfLast keeps the last-writer-flushes invariant on paths that bail
// out without writing: a sender that skipped its flush because we were
// queued behind it must not be left with its frame stuck in the buffer.
// Callers hold sendMu.
func (m *Mux) flushIfLast() {
	if m.bw.Buffered() > 0 && m.waiters.Load() == 0 {
		m.bw.Flush()
	}
}

// do executes one request/response exchange on stream st.
func (m *Mux) do(st *Conn, req lockd.Request) (lockd.Response, error) {
	ch := waiterPool.Get().(chan result)
	reqs := [1]lockd.Request{req}
	if err := m.send(st, reqs[:], ch); err != nil {
		waiterPool.Put(ch)
		return lockd.Response{}, fmt.Errorf("client: %s: %w", req.Op, err)
	}
	res := <-ch
	waiterPool.Put(ch)
	return finishResult(req, res)
}

// closeStream retires one logical session: the server acks after
// releasing the stream's grants, then both sides forget the stream.
func (m *Mux) closeStream(st *Conn) error {
	st.mu.Lock()
	already := st.broken != nil
	st.mu.Unlock()
	if already {
		return nil
	}
	_, err := m.do(st, lockd.Request{Op: lockd.OpEndStream})
	st.fail(errStreamClosed)
	m.mu.Lock()
	if m.streams[st.stream] == st {
		delete(m.streams, st.stream)
	}
	m.mu.Unlock()
	return err
}

// readLoop owns the inbound half: it reads response frames and routes
// each frame's batch of responses to its stream's oldest waiters, in
// order. Per-stream FIFOs are what keep sibling streams independent: a
// response only ever advances its own stream's queue. Any read or decode
// failure — and any frame on the reserved stream 0, which carries the
// server's connection-fatal protocol errors — breaks the whole mux.
func (m *Mux) readLoop() {
	br := bufio.NewReader(m.c)
	var buf []byte
	for {
		var stream uint32
		var ops []byte
		var err error
		stream, ops, buf, err = lockd.ReadFrame(br, buf, lockd.DefaultMaxFrameBytes)
		if err != nil {
			m.fail(fmt.Errorf("mux broken: %w", err))
			return
		}
		if stream == 0 {
			var resp lockd.Response
			if _, derr := lockd.DecodeResponseBin(ops, &resp); derr == nil && resp.Err != "" {
				m.fail(fmt.Errorf("server error: %s", resp.Err))
			} else {
				m.fail(errors.New("server error on stream 0"))
			}
			return
		}
		m.mu.Lock()
		st := m.streams[stream]
		m.mu.Unlock()
		if st == nil {
			m.fail(fmt.Errorf("response on unknown stream %d", stream))
			return
		}
		for len(ops) > 0 {
			var res result
			if ops, err = lockd.DecodeResponseBin(ops, &res.resp); err != nil {
				m.fail(fmt.Errorf("bad response: %w", err))
				return
			}
			st.mu.Lock()
			if st.qhead == len(st.queue) {
				st.mu.Unlock()
				m.fail(fmt.Errorf("response with no request in flight on stream %d", stream))
				return
			}
			ch := st.queue[st.qhead]
			st.queue[st.qhead] = nil
			st.qhead++
			if st.qhead == len(st.queue) {
				st.queue = st.queue[:0]
				st.qhead = 0
			}
			st.mu.Unlock()
			ch <- res
		}
	}
}

// fail breaks the mux: every stream's waiters are unblocked with err and
// later requests and Opens fail fast.
func (m *Mux) fail(err error) {
	m.mu.Lock()
	if m.broken == nil {
		m.broken = err
	}
	sts := make([]*Conn, 0, len(m.streams))
	for _, st := range m.streams {
		sts = append(sts, st)
	}
	m.mu.Unlock()
	for _, st := range sts {
		st.fail(err)
	}
}

// MuxPool opens logical sessions packed onto as few sockets as the
// conns-per-socket budget allows: the loadgen backend for N workers over
// N/perSocket connections.
type MuxPool struct {
	addr      string
	perSocket int

	mu    sync.Mutex
	muxes []*Mux
	open  int // streams opened on the newest mux
}

// NewMuxPool makes a pool dialing addr, packing up to perSocket logical
// sessions per socket (min 1).
func NewMuxPool(addr string, perSocket int) *MuxPool {
	if perSocket < 1 {
		perSocket = 1
	}
	return &MuxPool{addr: addr, perSocket: perSocket}
}

// Open returns a new logical session, dialing a fresh socket only when
// the newest one is full. A newest socket that broke (the server
// restarted, a failover killed the connection) does not wedge the pool:
// Open retires it and dials a replacement.
func (p *MuxPool) Open() (*Conn, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	for try := 0; ; try++ {
		if len(p.muxes) == 0 || p.open >= p.perSocket {
			m, err := DialMux(p.addr)
			if err != nil {
				return nil, err
			}
			p.muxes = append(p.muxes, m)
			p.open = 0
		}
		st, err := p.muxes[len(p.muxes)-1].Open()
		if err != nil {
			// Heal once: drop the broken socket and dial a fresh one; a
			// second failure is reported (the server itself is refusing).
			if try == 0 && errors.Is(err, ErrUnavailable) {
				p.muxes[len(p.muxes)-1].Close()
				p.muxes = p.muxes[:len(p.muxes)-1]
				p.open = p.perSocket
				continue
			}
			return nil, err
		}
		p.open++
		return st, nil
	}
}

// Sockets reports how many physical connections the pool has dialed.
func (p *MuxPool) Sockets() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.muxes)
}

// Close tears down every socket in the pool.
func (p *MuxPool) Close() error {
	p.mu.Lock()
	muxes := p.muxes
	p.muxes = nil
	p.open = 0
	p.mu.Unlock()
	var first error
	for _, m := range muxes {
		if err := m.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}
