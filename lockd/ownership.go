package lockd

// Request execution and, in clustered mode, key ownership: every op
// from either transport lands in handle(), and acquire-type ops pass
// the ownership gate first. The handoff argument when a key moves
// between nodes lives in wireCluster.

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"time"

	"anonmutex/internal/cluster"
	"anonmutex/internal/lease"
	"anonmutex/internal/lockmgr"
	"anonmutex/lockd/wire"
)

// wireCluster hooks the membership layer into the lease subsystem.
// Called once from Serve (under s.mu) when Cluster is set. Two effects,
// ordered so tokens stay sound across a handoff:
//
//  1. The token counter is floored to the current epoch's band
//     (cluster.TokenFloor), so every grant this node issues while the
//     view is at epoch E carries a token in [E<<32, (E+1)<<32).
//  2. On every membership change the floor rises to the new epoch's
//     band first, then every grant for a key this node no longer owns
//     is revoked through the lease manager's usual arbitration.
//
// Together: when a key moves from node A to node B at epoch E+1, A's
// outstanding grants (tokens < (E+1)<<32) are revoked — later ops on
// them answer Fenced — and B's first grant for the key already carries
// a token ≥ (E+1)<<32, strictly larger than anything A ever issued for
// it. Fencing-token monotonicity therefore survives ownership changes
// without any token state moving between nodes.
//
// The revocation sweep executes lock-manager holder exits and must
// not stall the gossip goroutines the OnChange callback runs on — a
// node busy revoking a large handoff would miss its own heartbeats and
// get marked suspect by its peers. The callback therefore only queues
// the view; a dedicated handoff worker applies every view in epoch
// order (no coalescing: a key that moves away and back must still have
// its interim grants revoked, exactly as synchronous semantics would).
// Floor raises happen only under handoffMu — in applyHandoff and at
// each attach in commitAcquire — never inline in the callback, so a
// token can never land in a band newer than the view its grant was
// validated under.
func (s *Server) wireCluster() {
	s.leases.EnsureTokenFloor(cluster.TokenFloor(s.Cluster.Epoch()))
	self := s.Cluster.Self().ID
	wake := make(chan struct{}, 1)
	quit := make(chan struct{})
	s.handoffQuit = quit
	s.wg.Add(1)
	go s.handoffLoop(self, wake, quit)
	s.Cluster.OnChange(func(v cluster.View) {
		s.mu.Lock()
		s.handoffPend = append(s.handoffPend, v)
		s.mu.Unlock()
		select {
		case wake <- struct{}{}:
		default:
		}
	})
}

// handoffLoop drains queued membership views and runs each view's
// revocation sweep, in epoch order. Pending sweeps left at shutdown
// are subsumed by leases.Close, which revokes everything.
func (s *Server) handoffLoop(self string, wake, quit <-chan struct{}) {
	defer s.wg.Done()
	for {
		select {
		case <-quit:
			return
		case <-wake:
		}
		for {
			s.mu.Lock()
			pending := s.handoffPend
			s.handoffPend = nil
			s.mu.Unlock()
			if len(pending) == 0 {
				break
			}
			// Callbacks fire from two gossip goroutines, so two views can
			// be queued slightly out of order; sweeping in epoch order
			// keeps the newest view's verdict the last word.
			sort.Slice(pending, func(i, j int) bool { return pending[i].Epoch < pending[j].Epoch })
			for _, v := range pending {
				s.applyHandoff(self, v)
			}
		}
	}
}

// applyHandoff runs one view's handoff: raise the token floor to the
// view's epoch band, then revoke every grant for a key this node no
// longer owns. It holds handoffMu so the scan inside RevokeIf is
// ordered after every grant attached under any earlier view — no
// grant can slip between the view change and the sweep.
func (s *Server) applyHandoff(self string, v cluster.View) {
	s.handoffMu.Lock()
	defer s.handoffMu.Unlock()
	s.leases.EnsureTokenFloor(cluster.TokenFloor(v.Epoch))
	s.leases.RevokeIf(func(name string) bool {
		owner, ok := v.Owner(name)
		return ok && owner.ID != self
	})
}

// checkOwner gates acquire-type ops in clustered mode: a key owned by
// another node is answered with a wrong_owner redirect naming that
// owner, and the request never touches the lock manager. Ops on grants
// this session already holds (release, heartbeat, holds) are not gated:
// if ownership moved, the membership-change hook has already revoked
// the grant, so those ops answer Fenced — the informative outcome —
// rather than a redirect to a node that never knew the grant.
//
// A view where the key has no owner (every member dead — a partitioned
// node's view of the world) refuses the acquire outright rather than
// granting what another partition may also grant.
//
// Owner and epoch come from one View snapshot: reading them separately
// could pair a stale owner address with a newer epoch and teach the
// client cache a wrong owner at that epoch.
func (s *Server) checkOwner(name string) (Response, bool) {
	v := s.Cluster.View()
	owner, ok := v.Owner(name)
	if !ok {
		return Response{Err: fmt.Sprintf("lockd: no live owner for %q", name)}, false
	}
	if owner.ID == v.Self.ID {
		return Response{}, true
	}
	// The error text is stamped lazily (stampRedirect): in proxy mode the
	// redirect is usually consumed by a successful forward, and formatting
	// a string per forwarded op would be pure waste on that hot path.
	return Response{WrongOwner: true, Owner: owner.Addr, Epoch: v.Epoch}, false
}

// stampRedirect fills in the human-readable error text of a redirect
// about to be answered to a client, completing what checkOwner left
// lazy. The text is exactly wire.WrongOwnerResponse's, so clients too
// old for the wrong_owner field see the same plain failure they always
// did.
func stampRedirect(name string, r Response) Response {
	if r.WrongOwner && r.Err == "" {
		r.Err = wire.WrongOwnerResponse(name, r.Owner, r.Epoch).Err
	}
	return r
}

// commitAcquire turns a lock the manager just granted into the
// session's grant. In clustered mode this is where the ownership gate
// is decided for real: the pre-acquire checkOwner only short-circuits
// the obvious redirect — an acquire that then blocked may complete
// long after the key moved to another node, and the view-change sweep
// cannot revoke a grant that does not exist yet. So ownership is
// re-checked here, under handoffMu, making (re-check, floor, attach)
// atomic with respect to the sweep and to other attachments: if this
// node still owns the key under the view read here, either the attach
// completes before any sweep that moves the key away (which then
// revokes it), or a later re-check sees the newer view and redirects.
// When ownership moved, the lock goes straight back to the manager —
// it never becomes a lease — and the client gets the redirect it would
// have gotten up front.
//
// The token floor is raised to the checked view's epoch band before
// the token is drawn, so a new owner's first grant is banded correctly
// even if its handoff sweep has not run yet; because no other floor
// raise can interleave (they all hold handoffMu), the token also
// cannot land in a band newer than the view it was validated under.
func (s *Server) commitAcquire(sess *session, name string, l lockmgr.Lease) Response {
	if s.Cluster == nil {
		g, err := s.attachGrant(l)
		if err != nil {
			return Response{Err: err.Error()}
		}
		sess.grants[name] = g
		return s.grantResponse(g)
	}
	s.handoffMu.Lock()
	v := s.Cluster.View()
	owner, ok := v.Owner(name)
	if !ok || owner.ID != v.Self.ID {
		s.handoffMu.Unlock()
		s.mgr.Release(l)
		if !ok {
			return Response{Err: fmt.Sprintf("lockd: no live owner for %q", name)}
		}
		return wire.WrongOwnerResponse(name, owner.Addr, v.Epoch)
	}
	s.leases.EnsureTokenFloor(cluster.TokenFloor(v.Epoch))
	tok, err := s.leases.Attach(l)
	s.handoffMu.Unlock()
	if err != nil {
		// Attach released the lock on failure; the acquire is refused.
		return Response{Err: err.Error()}
	}
	g := grant{l: l, token: tok}
	sess.grants[name] = g
	return s.grantResponse(g)
}

// handleAcquire is handle's OpAcquire case. With block=true it always
// answers (done=true). With block=false it answers only when no
// blocking would be needed: done=false means the acquire ran its
// validations and one uncontended fast probe, found the lock busy, and
// stopped — with no residue, so re-submitting the same request through
// the blocking path is exactly an acquire that started a moment later.
// The binary reader's inline fast path uses the non-blocking mode; it
// only ever does so for sessions whose ops arrived over an inter-node
// connection, whose noForward flag also keeps maybeForward — the one
// other spot this path could stall — an immediate return.
func (s *Server) handleAcquire(connCtx context.Context, sess *session, req Request, preBlock func(), block bool) (resp Response, done bool) {
	if req.Name == "" {
		return needName(req.Op), true
	}
	if req.TimeoutMS < 0 {
		return Response{Err: fmt.Sprintf("lockd: negative timeout_ms %d", req.TimeoutMS)}, true
	}
	if _, held := sess.grants[req.Name]; held {
		return alreadyHeld(req.Name), true
	}
	if _, held := sess.remoteGrants[req.Name]; held {
		return alreadyHeld(req.Name), true
	}
	if s.Cluster != nil {
		if resp, ok := s.checkOwner(req.Name); !ok {
			return s.maybeForward(sess, req, resp, preBlock), true
		}
	}
	// Fast path: no contexts, no timers, no allocation — consume a
	// remembered cancel, then take the lock manager's uncontended
	// probe. Only a lock that is actually busy pays the slow path.
	if sess.beginFastAcquire(req.Name) {
		return Response{OK: true, Aborted: true}, true
	}
	l, ok, err := s.mgr.AcquireFast(req.Name)
	cancelled := sess.endFastAcquire()
	if err != nil {
		return Response{Err: err.Error()}, true
	}
	if ok {
		// A cancel that raced in during the attempt lost, exactly as a
		// cancel observed after a slow-path acquisition completes.
		return s.commitAcquire(sess, req.Name, l), true
	}
	if cancelled {
		return Response{OK: true, Aborted: true}, true
	}
	if !block {
		return Response{}, false
	}
	if preBlock != nil {
		preBlock()
	}
	base, baseCancel := s.acquireCtx(connCtx, req)
	defer baseCancel()
	ctx, cancel := sess.beginAcquire(base, req.Name)
	defer cancel()
	held, err := s.mgr.AcquireLeaseCtx(ctx, req.Name)
	sess.endAcquire()
	if err != nil {
		if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
			return Response{OK: true, Aborted: true}, true
		}
		return Response{Err: err.Error()}, true
	}
	return s.commitAcquire(sess, req.Name, held), true
}

// handle executes one request against the session. preBlock, when
// non-nil, is called right before an acquire commits to the blocking
// slow path — the transport uses it to flush responses batched so far,
// keeping the fast path's batching while never letting a contended
// acquire delay answers already owed.
func (s *Server) handle(connCtx context.Context, sess *session, req Request, preBlock func()) Response {
	switch req.Op {
	case OpAcquire:
		resp, _ := s.handleAcquire(connCtx, sess, req, preBlock, true)
		return resp
	case OpCancel:
		// The abort itself already happened out of band (or was
		// remembered) when the reader saw this line; this is just the
		// in-order acknowledgement.
		return Response{OK: true}
	case OpTryAcquire:
		if req.Name == "" {
			return needName(req.Op)
		}
		if _, held := sess.grants[req.Name]; held {
			return alreadyHeld(req.Name)
		}
		if _, held := sess.remoteGrants[req.Name]; held {
			return alreadyHeld(req.Name)
		}
		if s.Cluster != nil {
			if resp, ok := s.checkOwner(req.Name); !ok {
				return s.maybeForward(sess, req, resp, preBlock)
			}
		}
		l, ok, err := s.mgr.TryAcquireLease(req.Name)
		if err != nil {
			return Response{Err: err.Error()}
		}
		if !ok {
			return Response{OK: true, Acquired: false}
		}
		return s.commitAcquire(sess, req.Name, l)
	case OpRelease:
		if req.Name == "" {
			return needName(req.Op)
		}
		if owner, held := sess.remoteGrants[req.Name]; held {
			return s.forwardRelease(sess, req, owner)
		}
		g, held := sess.grants[req.Name]
		if !held {
			return Response{Err: fmt.Sprintf("lockd: session does not hold %q", req.Name)}
		}
		delete(sess.grants, req.Name)
		if err := s.releaseGrant(g); err != nil {
			if errors.Is(err, lease.ErrFenced) {
				return Response{Err: err.Error(), Fenced: true}
			}
			return Response{Err: err.Error()}
		}
		return Response{OK: true}
	case OpHolds:
		if req.Name == "" {
			return needName(req.Op)
		}
		if owner, held := sess.remoteGrants[req.Name]; held {
			return s.forwardHeld(sess, req, owner)
		}
		g, held := sess.grants[req.Name]
		resp := Response{OK: true, Holds: held}
		if held && s.leases != nil {
			resp.Token = g.token
			if rem, ok := s.leases.Remaining(req.Name, g.token); ok {
				resp.TTLMS = ttlMillis(rem)
			} else {
				// The lease expired under the session: the grant is gone
				// and the token stale, exactly as any other fenced op.
				delete(sess.grants, req.Name)
				resp.Holds = false
				resp.Fenced = true
			}
		}
		return resp
	case OpHeartbeat:
		if s.leases == nil {
			// Leases off: an acknowledged no-op, so clients can always
			// send heartbeats unconditionally.
			return Response{OK: true}
		}
		if req.Name != "" {
			if owner, held := sess.remoteGrants[req.Name]; held {
				return s.forwardHeld(sess, req, owner)
			}
			g, held := sess.grants[req.Name]
			if !held {
				return Response{Err: fmt.Sprintf("lockd: session does not hold %q", req.Name)}
			}
			ttl, err := s.leases.Heartbeat(req.Name, g.token)
			if err != nil {
				// Only a fencing rejection means the grant is gone; a
				// journal commit failure leaves the lease live, and the
				// client should retry rather than drop its hold.
				if errors.Is(err, lease.ErrFenced) {
					delete(sess.grants, req.Name)
					return Response{Err: err.Error(), Fenced: true}
				}
				return Response{Err: err.Error()}
			}
			return Response{OK: true, TTLMS: ttlMillis(ttl)}
		}
		// Bare heartbeat renews every grant the session holds, dropping
		// the ones whose leases already expired; Fenced flags that any
		// were dropped, TTLMS reports the tightest surviving deadline.
		var fenced bool
		var min time.Duration
		for name, g := range sess.grants {
			ttl, err := s.leases.Heartbeat(name, g.token)
			if err != nil {
				if errors.Is(err, lease.ErrFenced) {
					delete(sess.grants, name)
					fenced = true
				}
				continue
			}
			if min == 0 || ttl < min {
				min = ttl
			}
		}
		if len(sess.remotes) > 0 {
			s.heartbeatRemotes(sess, &fenced, &min)
		}
		return Response{OK: true, Fenced: fenced, TTLMS: ttlMillis(min)}
	case OpStats:
		c := s.mgr.Counters()
		st := &Stats{
			Acquires:      c.Acquires,
			Releases:      c.Releases,
			Waits:         c.Waits,
			TryAcquires:   c.TryAcquires,
			TryFailures:   c.TryFailures,
			LockCreates:   c.LockCreates,
			Evictions:     c.Evictions,
			ResidentLocks: c.ResidentLocks,
			Aborts:        c.Aborts,
			LeaseTimeouts: c.LeaseTimeouts,
			Violations:    s.mgr.Violations(),
			Sessions:      s.Sessions(),
			Streams:       int(s.liveStreams.Load()),
		}
		if s.leases != nil {
			lc := s.leases.Counters()
			st.Expired = lc.Expired
			st.Revoked = lc.Revoked
			st.FencedRejects = lc.FencedRejects
		}
		return Response{OK: true, Stats: st}
	case OpPing:
		return Response{OK: true}
	default:
		return Response{Err: fmt.Sprintf("lockd: unknown op %q", req.Op)}
	}
}

func needName(op string) Response {
	return Response{Err: fmt.Sprintf("lockd: %s needs a name", op)}
}

func alreadyHeld(name string) Response {
	return Response{Err: fmt.Sprintf("lockd: session already holds %q", name)}
}

// ttlMillis reports a remaining TTL in milliseconds, rounded up so a
// live lease never reads 0.
func ttlMillis(d time.Duration) int64 {
	if d <= 0 {
		return 0
	}
	return int64((d + time.Millisecond - 1) / time.Millisecond)
}
