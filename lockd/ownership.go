package lockd

// Request execution and, in clustered mode, key ownership: every op
// from either transport lands in handle(), and acquire-type ops pass
// the ownership gate first. The handoff argument when a key moves
// between nodes lives in wireCluster.

import (
	"context"
	"errors"
	"fmt"
	"time"

	"anonmutex/internal/cluster"
	"anonmutex/internal/lease"
	"anonmutex/lockd/wire"
)

// wireCluster hooks the membership layer into the lease subsystem.
// Called once from Serve (under s.mu) when Cluster is set. Two effects,
// ordered so tokens stay sound across a handoff:
//
//  1. The token counter is floored to the current epoch's band
//     (cluster.TokenFloor), so every grant this node issues while the
//     view is at epoch E carries a token in [E<<32, (E+1)<<32).
//  2. On every membership change the floor rises to the new epoch's
//     band first, then every grant for a key this node no longer owns
//     is revoked through the lease manager's usual arbitration.
//
// Together: when a key moves from node A to node B at epoch E+1, A's
// outstanding grants (tokens < (E+1)<<32) are revoked — later ops on
// them answer Fenced — and B's first grant for the key already carries
// a token ≥ (E+1)<<32, strictly larger than anything A ever issued for
// it. Fencing-token monotonicity therefore survives ownership changes
// without any token state moving between nodes.
func (s *Server) wireCluster() {
	s.leases.EnsureTokenFloor(cluster.TokenFloor(s.Cluster.Epoch()))
	self := s.Cluster.Self().ID
	leases := s.leases
	s.Cluster.OnChange(func(v cluster.View) {
		leases.EnsureTokenFloor(cluster.TokenFloor(v.Epoch))
		leases.RevokeIf(func(name string) bool {
			owner, ok := v.Owner(name)
			return ok && owner.ID != self
		})
	})
}

// checkOwner gates acquire-type ops in clustered mode: a key owned by
// another node is answered with a wrong_owner redirect naming that
// owner, and the request never touches the lock manager. Ops on grants
// this session already holds (release, heartbeat, holds) are not gated:
// if ownership moved, the membership-change hook has already revoked
// the grant, so those ops answer Fenced — the informative outcome —
// rather than a redirect to a node that never knew the grant.
//
// A view where the key has no owner (every member dead — a partitioned
// node's view of the world) refuses the acquire outright rather than
// granting what another partition may also grant.
func (s *Server) checkOwner(name string) (Response, bool) {
	owner, ok := s.Cluster.Owner(name)
	if !ok {
		return Response{Err: fmt.Sprintf("lockd: no live owner for %q", name)}, false
	}
	if owner.ID == s.Cluster.Self().ID {
		return Response{}, true
	}
	return wire.WrongOwnerResponse(name, owner.Addr, s.Cluster.Epoch()), false
}

// handle executes one request against the session. preBlock, when
// non-nil, is called right before an acquire commits to the blocking
// slow path — the transport uses it to flush responses batched so far,
// keeping the fast path's batching while never letting a contended
// acquire delay answers already owed.
func (s *Server) handle(connCtx context.Context, sess *session, req Request, preBlock func()) Response {
	switch req.Op {
	case OpAcquire:
		if req.Name == "" {
			return needName(req.Op)
		}
		if req.TimeoutMS < 0 {
			return Response{Err: fmt.Sprintf("lockd: negative timeout_ms %d", req.TimeoutMS)}
		}
		if _, held := sess.grants[req.Name]; held {
			return alreadyHeld(req.Name)
		}
		if s.Cluster != nil {
			if resp, ok := s.checkOwner(req.Name); !ok {
				return resp
			}
		}
		// Fast path: no contexts, no timers, no allocation — consume a
		// remembered cancel, then take the lock manager's uncontended
		// probe. Only a lock that is actually busy pays the slow path.
		if sess.beginFastAcquire(req.Name) {
			return Response{OK: true, Aborted: true}
		}
		l, ok, err := s.mgr.AcquireFast(req.Name)
		cancelled := sess.endFastAcquire()
		if err != nil {
			return Response{Err: err.Error()}
		}
		if ok {
			// A cancel that raced in during the attempt lost, exactly as a
			// cancel observed after a slow-path acquisition completes.
			g := s.attachGrant(l)
			sess.grants[req.Name] = g
			return s.grantResponse(g)
		}
		if cancelled {
			return Response{OK: true, Aborted: true}
		}
		if preBlock != nil {
			preBlock()
		}
		base, baseCancel := s.acquireCtx(connCtx, req)
		defer baseCancel()
		ctx, cancel := sess.beginAcquire(base, req.Name)
		defer cancel()
		held, err := s.mgr.AcquireLeaseCtx(ctx, req.Name)
		sess.endAcquire()
		if err != nil {
			if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
				return Response{OK: true, Aborted: true}
			}
			return Response{Err: err.Error()}
		}
		g := s.attachGrant(held)
		sess.grants[req.Name] = g
		return s.grantResponse(g)
	case OpCancel:
		// The abort itself already happened out of band (or was
		// remembered) when the reader saw this line; this is just the
		// in-order acknowledgement.
		return Response{OK: true}
	case OpTryAcquire:
		if req.Name == "" {
			return needName(req.Op)
		}
		if _, held := sess.grants[req.Name]; held {
			return alreadyHeld(req.Name)
		}
		if s.Cluster != nil {
			if resp, ok := s.checkOwner(req.Name); !ok {
				return resp
			}
		}
		l, ok, err := s.mgr.TryAcquireLease(req.Name)
		if err != nil {
			return Response{Err: err.Error()}
		}
		if !ok {
			return Response{OK: true, Acquired: false}
		}
		g := s.attachGrant(l)
		sess.grants[req.Name] = g
		return s.grantResponse(g)
	case OpRelease:
		if req.Name == "" {
			return needName(req.Op)
		}
		g, held := sess.grants[req.Name]
		if !held {
			return Response{Err: fmt.Sprintf("lockd: session does not hold %q", req.Name)}
		}
		delete(sess.grants, req.Name)
		if err := s.releaseGrant(g); err != nil {
			if errors.Is(err, lease.ErrFenced) {
				return Response{Err: err.Error(), Fenced: true}
			}
			return Response{Err: err.Error()}
		}
		return Response{OK: true}
	case OpHolds:
		if req.Name == "" {
			return needName(req.Op)
		}
		g, held := sess.grants[req.Name]
		resp := Response{OK: true, Holds: held}
		if held && s.leases != nil {
			resp.Token = g.token
			if rem, ok := s.leases.Remaining(req.Name, g.token); ok {
				resp.TTLMS = ttlMillis(rem)
			} else {
				// The lease expired under the session: the grant is gone
				// and the token stale, exactly as any other fenced op.
				delete(sess.grants, req.Name)
				resp.Holds = false
				resp.Fenced = true
			}
		}
		return resp
	case OpHeartbeat:
		if s.leases == nil {
			// Leases off: an acknowledged no-op, so clients can always
			// send heartbeats unconditionally.
			return Response{OK: true}
		}
		if req.Name != "" {
			g, held := sess.grants[req.Name]
			if !held {
				return Response{Err: fmt.Sprintf("lockd: session does not hold %q", req.Name)}
			}
			ttl, err := s.leases.Heartbeat(req.Name, g.token)
			if err != nil {
				delete(sess.grants, req.Name)
				return Response{Err: err.Error(), Fenced: true}
			}
			return Response{OK: true, TTLMS: ttlMillis(ttl)}
		}
		// Bare heartbeat renews every grant the session holds, dropping
		// the ones whose leases already expired; Fenced flags that any
		// were dropped, TTLMS reports the tightest surviving deadline.
		var fenced bool
		var min time.Duration
		for name, g := range sess.grants {
			ttl, err := s.leases.Heartbeat(name, g.token)
			if err != nil {
				delete(sess.grants, name)
				fenced = true
				continue
			}
			if min == 0 || ttl < min {
				min = ttl
			}
		}
		return Response{OK: true, Fenced: fenced, TTLMS: ttlMillis(min)}
	case OpStats:
		c := s.mgr.Counters()
		st := &Stats{
			Acquires:      c.Acquires,
			Releases:      c.Releases,
			Waits:         c.Waits,
			TryAcquires:   c.TryAcquires,
			TryFailures:   c.TryFailures,
			LockCreates:   c.LockCreates,
			Evictions:     c.Evictions,
			ResidentLocks: c.ResidentLocks,
			Aborts:        c.Aborts,
			LeaseTimeouts: c.LeaseTimeouts,
			Violations:    s.mgr.Violations(),
			Sessions:      s.Sessions(),
			Streams:       int(s.liveStreams.Load()),
		}
		if s.leases != nil {
			lc := s.leases.Counters()
			st.Expired = lc.Expired
			st.Revoked = lc.Revoked
			st.FencedRejects = lc.FencedRejects
		}
		return Response{OK: true, Stats: st}
	case OpPing:
		return Response{OK: true}
	default:
		return Response{Err: fmt.Sprintf("lockd: unknown op %q", req.Op)}
	}
}

func needName(op string) Response {
	return Response{Err: fmt.Sprintf("lockd: %s needs a name", op)}
}

func alreadyHeld(name string) Response {
	return Response{Err: fmt.Sprintf("lockd: session already holds %q", name)}
}

// ttlMillis reports a remaining TTL in milliseconds, rounded up so a
// live lease never reads 0.
func ttlMillis(d time.Duration) int64 {
	if d <= 0 {
		return 0
	}
	return int64((d + time.Millisecond - 1) / time.Millisecond)
}
