// Package wire defines the lockd protocol's vocabulary once, for every
// codec: the operation names, the Request/Response/Stats shapes, the
// binary opcode and response-flag tables, and the dialect numbering
// that version-gates them. The JSON codec (lockd's AppendResponse/
// DecodeRequest family) and the binary codec (AppendResponseBin/
// DecodeRequestBin) both consume these definitions, so a protocol
// addition — the wrong_owner redirect being the first one made under
// this regime — is declared in exactly one place and picked up by both
// wire formats.
//
// The package is pure data: no I/O, no dependencies beyond the
// standard library's fmt. lockd re-exports the names (type aliases and
// constant re-declarations), so existing importers keep compiling
// unchanged.
package wire

import "fmt"

// Operation names of the wire protocol.
const (
	OpAcquire    = "acquire"
	OpTryAcquire = "try"
	OpRelease    = "release"
	OpCancel     = "cancel"
	OpHolds      = "holds"
	OpHeartbeat  = "heartbeat"
	OpStats      = "stats"
	OpPing       = "ping"

	// OpEndStream retires one logical stream of a multiplexed binary
	// connection: the server releases every grant the stream holds,
	// acks, and forgets the stream. It exists only on the binary
	// transport; the JSON protocol's equivalent is closing the
	// connection.
	OpEndStream = "end_stream"

	// OpReleaseNoAck is a fire-and-forget release: identical to
	// OpRelease server-side, but the server sends NO response — the
	// sender must not register a response slot for it. Proxy-mode nodes
	// use it to retire forwarded grants without costing the inter-node
	// stream a round trip; it is valid (if rarely useful) from ordinary
	// clients too.
	OpReleaseNoAck = "release_noack"
)

// Request is one client request line.
type Request struct {
	// Op is one of the Op* constants.
	Op string `json:"op"`
	// Name is the lock name (required for acquire, try, release, holds;
	// optional for cancel, which then aborts any in-flight acquire).
	Name string `json:"name,omitempty"`
	// TimeoutMS bounds an acquire: after this many milliseconds the
	// waiter gives up cleanly and the response reports aborted. 0 means
	// wait forever (subject to the server's -max-wait cap, if any).
	TimeoutMS int64 `json:"timeout_ms,omitempty"`
}

// Response is one server response line.
type Response struct {
	// OK reports whether the request succeeded; on failure Err explains.
	// An aborted acquire is a success (OK with Aborted set): the protocol
	// worked exactly as asked.
	OK  bool   `json:"ok"`
	Err string `json:"err,omitempty"`
	// Acquired answers acquire and try: whether the lock is now held by
	// the session.
	Acquired bool `json:"acquired,omitempty"`
	// Aborted answers acquire: the attempt was abandoned (timeout, cancel
	// op, or server cap) after withdrawing cleanly; the lock is not held.
	Aborted bool `json:"aborted,omitempty"`
	// Holds answers holds.
	Holds bool `json:"holds,omitempty"`
	// Token is the grant's fencing token, stamped on every acquire and
	// echoed by holds when the server runs leases. Tokens are strictly
	// increasing per key, so a token smaller than the key's latest is
	// provably stale. 0 when leases are disabled.
	Token uint64 `json:"token,omitempty"`
	// TTLMS is the grant's remaining lease TTL in milliseconds (holds
	// and heartbeat; rounded up, so a live lease never reads 0).
	TTLMS int64 `json:"ttl_ms,omitempty"`
	// Fenced marks a request rejected (or, on heartbeat, partially
	// ignored) because the grant's lease expired or was revoked: the
	// session's fencing token is stale and the lock may already be held
	// by a successor.
	Fenced bool `json:"fenced,omitempty"`
	// WrongOwner marks a request refused because, in the cluster's
	// current membership view, this node does not own the key: Owner is
	// the lock-service address of the node that does, and Epoch is the
	// membership epoch the answer was computed under, so a routing
	// client can invalidate everything it cached under older epochs.
	// Single-node servers never set it.
	WrongOwner bool `json:"wrong_owner,omitempty"`
	// OwnerHint marks a successful op that a proxy-mode node forwarded
	// to the key's owner on the client's behalf: Owner/Epoch name that
	// owner, so a routing client can send its next op for the key
	// directly — the proxy path is a cold-start accelerator, not a
	// steady-state tax. Unlike WrongOwner it rides a success (OK=true);
	// old clients that skip unknown fields lose only the routing hint,
	// never the grant.
	OwnerHint bool `json:"owner_hint,omitempty"`
	// Owner is the owning node's lock-service address (with WrongOwner
	// or OwnerHint).
	Owner string `json:"owner,omitempty"`
	// Epoch is the membership epoch of the redirect or hint (with
	// WrongOwner or OwnerHint).
	Epoch uint64 `json:"epoch,omitempty"`
	// Stats answers stats.
	Stats *Stats `json:"stats,omitempty"`
}

// Stats is the manager-wide counter snapshot served by the stats op.
type Stats struct {
	Acquires      uint64 `json:"acquires"`
	Releases      uint64 `json:"releases"`
	Waits         uint64 `json:"waits"`
	TryAcquires   uint64 `json:"try_acquires"`
	TryFailures   uint64 `json:"try_failures"`
	LockCreates   uint64 `json:"lock_creates"`
	Evictions     uint64 `json:"evictions"`
	ResidentLocks int    `json:"resident_locks"`
	// Aborts counts acquirers that withdrew from the register competition
	// (deadline, cancel, or connection drop); LeaseTimeouts counts those
	// whose context ended while still queued for a process handle.
	Aborts        uint64 `json:"aborts"`
	LeaseTimeouts uint64 `json:"lease_timeouts"`
	// Expired counts grants forcibly revoked because their holder
	// stopped heartbeating past the lease TTL; Revoked counts explicit
	// and shutdown-time revocations; FencedRejects counts ops rejected
	// for a stale fencing token. All 0 with leases disabled.
	Expired       uint64 `json:"expired"`
	Revoked       uint64 `json:"revoked"`
	FencedRejects uint64 `json:"fenced_rejects"`
	// Violations is the manager's holder cross-check: it must stay 0.
	Violations uint64 `json:"violations"`
	// Sessions is the number of live connections.
	Sessions int `json:"sessions"`
	// Streams is the number of live logical sessions: every JSON
	// connection counts one, and every open stream of a multiplexed
	// binary connection counts one — Streams/Sessions is the socket
	// amortization the binary transport buys.
	Streams int `json:"streams,omitempty"`
}

// WrongOwnerResponse builds the redirect answer for a key this node
// does not own: a refusal (OK=false) whose WrongOwner/Owner/Epoch
// fields carry where the key lives now. Both codecs encode it from
// here — the redirect is defined once. Old-dialect peers (JSON decoders
// that skip unknown fields, binary v1/v2 connections whose encoder has
// no redirect flag) see a plain refusal with the same error text: they
// fail cleanly rather than silently operating on the wrong node.
func WrongOwnerResponse(name, owner string, epoch uint64) Response {
	return Response{
		Err:        fmt.Sprintf("lockd: wrong owner for %q: try %s", name, owner),
		WrongOwner: true,
		Owner:      owner,
		Epoch:      epoch,
	}
}

// Dialect numbers one negotiated binary response encoding. The magic
// preamble a client leads with pins the dialect for its whole
// connection; there is no per-op tolerance.
type Dialect uint8

const (
	// DialectV1 is the pre-lease encoding: no lease/fenced flags, the
	// original 13-field stats sequence.
	DialectV1 Dialect = 1
	// DialectV2 added the lease token/TTL pair, the fenced flag, and
	// the expired/revoked/fenced_rejects stats fields.
	DialectV2 Dialect = 2
	// DialectV3 widens the response flags to a uvarint (values under
	// 128 still cost one byte) and adds the wrong_owner redirect: flag
	// FlagRedirect, owner address, membership epoch.
	DialectV3 Dialect = 3
	// DialectV4 adds the proxy-mode owner hint: flag FlagOwnerHint,
	// followed by the owning node's address and the membership epoch —
	// the same shape as the redirect, but riding a success.
	DialectV4 Dialect = 4
)

// Binary opcodes, one per wire op (OpEndStream is transport-level and
// has no JSON counterpart).
const (
	binOpAcquire = 1 + iota
	binOpTry
	binOpRelease
	binOpCancel
	binOpHolds
	binOpStats
	binOpPing
	binOpEndStream
	binOpHeartbeat
	binOpReleaseNoAck
)

// Opcode maps a protocol op string to its binary opcode (0 = unknown).
func Opcode(op string) byte {
	switch op {
	case OpAcquire:
		return binOpAcquire
	case OpTryAcquire:
		return binOpTry
	case OpRelease:
		return binOpRelease
	case OpCancel:
		return binOpCancel
	case OpHolds:
		return binOpHolds
	case OpStats:
		return binOpStats
	case OpPing:
		return binOpPing
	case OpEndStream:
		return binOpEndStream
	case OpHeartbeat:
		return binOpHeartbeat
	case OpReleaseNoAck:
		return binOpReleaseNoAck
	}
	return 0
}

// OpOfCode is the inverse of Opcode ("" = unknown).
func OpOfCode(c byte) string {
	switch c {
	case binOpAcquire:
		return OpAcquire
	case binOpTry:
		return OpTryAcquire
	case binOpRelease:
		return OpRelease
	case binOpCancel:
		return OpCancel
	case binOpHolds:
		return OpHolds
	case binOpStats:
		return OpStats
	case binOpPing:
		return OpPing
	case binOpEndStream:
		return OpEndStream
	case binOpHeartbeat:
		return OpHeartbeat
	case binOpReleaseNoAck:
		return OpReleaseNoAck
	}
	return ""
}

// Binary response flag bits. The lease and fenced bits exist only from
// the v2 dialect on; the redirect bit only from v3, where the flag
// field widened from one byte to a uvarint. A connection pinned to an
// older dialect never sees the newer bits (and its decoder rejects
// them as unknown — that strictness is what makes the magic preamble
// the version gate).
const (
	FlagOK        = 1 << iota // Response.OK
	FlagAcquired              // Response.Acquired
	FlagAborted               // Response.Aborted
	FlagHolds                 // Response.Holds
	FlagErr                   // an error string follows
	FlagStats                 // a stats payload follows
	FlagLease                 // v2+: a fencing token uvarint + ttl_ms varint follow
	FlagFenced                // v2+: Response.Fenced
	FlagRedirect              // v3+: an owner address + epoch uvarint follow
	FlagOwnerHint             // v4+: a proxied op's owner address + epoch uvarint follow
)

// KnownFlags is the set of flag bits a dialect defines; anything
// outside it is a protocol error for that dialect.
func KnownFlags(d Dialect) uint64 {
	switch d {
	case DialectV1:
		return FlagOK | FlagAcquired | FlagAborted | FlagHolds | FlagErr | FlagStats
	case DialectV2:
		return FlagOK | FlagAcquired | FlagAborted | FlagHolds | FlagErr | FlagStats |
			FlagLease | FlagFenced
	case DialectV3:
		return FlagOK | FlagAcquired | FlagAborted | FlagHolds | FlagErr | FlagStats |
			FlagLease | FlagFenced | FlagRedirect
	default:
		return FlagOK | FlagAcquired | FlagAborted | FlagHolds | FlagErr | FlagStats |
			FlagLease | FlagFenced | FlagRedirect | FlagOwnerHint
	}
}
