package lockd_test

// Abortable-acquisition tests: timeout_ms, the cancel op, and the
// reaping of waiters abandoned by a dropped connection.

import (
	"context"
	"errors"
	"net"
	"testing"
	"time"

	"anonmutex/internal/lockmgr"
	"anonmutex/lockd"
	"anonmutex/lockd/client"
)

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, d time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("timed out after %v waiting for %s", d, what)
}

// TestDisconnectWhileQueuedReapsWaiter is the regression test for the
// abandoned-waiter leak: a client that drops its connection while its
// acquire is blocked — competing for the registers, or queued for a
// handle — must be reaped immediately, not compete on as a ghost that
// can steal the lock from live clients.
func TestDisconnectWhileQueuedReapsWaiter(t *testing.T) {
	srv, mgr, addr := startServer(t, lockmgr.Config{HandlesPerLock: 2, Shards: 1})

	holder, err := client.DialConn(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer holder.Close()
	if err := holder.Acquire("k"); err != nil {
		t.Fatal(err)
	}

	// B leases the second handle and competes for the held lock; C then
	// queues for a handle behind it.
	b, err := client.DialConn(addr)
	if err != nil {
		t.Fatal(err)
	}
	c, err := client.DialConn(addr)
	if err != nil {
		t.Fatal(err)
	}
	bErr := make(chan error, 1)
	cErr := make(chan error, 1)
	go func() { bErr <- b.Acquire("k") }()
	waitFor(t, 2*time.Second, "all sessions to connect", func() bool {
		return srv.Sessions() == 3
	})
	time.Sleep(50 * time.Millisecond) // let B's acquire reach the register competition
	go func() { cErr <- c.Acquire("k") }()
	// No counter observes a still-queued waiter (Waits steps when the
	// wait ends), so give C time to reach the lease queue behind B.
	time.Sleep(50 * time.Millisecond)

	// Both vanish while blocked. The server must reap them while the
	// lock is still held — their sessions end and their blocked acquires
	// are withdrawn, without waiting for the holder to release.
	b.Close()
	c.Close()
	waitFor(t, 2*time.Second, "the dropped sessions to be reaped", func() bool {
		return srv.Sessions() == 1
	})
	waitFor(t, 2*time.Second, "the abandoned acquires to be withdrawn", func() bool {
		cnt := mgr.Counters()
		return cnt.Aborts+cnt.LeaseTimeouts >= 2
	})
	if err := <-bErr; err == nil {
		t.Error("B's acquire reported success on a dead session")
	}
	if err := <-cErr; err == nil {
		t.Error("C's acquire reported success on a dead session")
	}

	// The stack must be fully healthy: release and promptly re-acquire.
	if err := holder.Release("k"); err != nil {
		t.Fatal(err)
	}
	d, err := client.DialConn(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	ok, err := d.AcquireFor("k", 2*time.Second)
	if err != nil || !ok {
		t.Fatalf("acquire after reaping = (%v, %v), want (true, nil)", ok, err)
	}
	if err := d.Release("k"); err != nil {
		t.Fatal(err)
	}
	if v := mgr.Violations(); v != 0 {
		t.Fatalf("%d violations", v)
	}
}

// TestDisconnectWithPipelinedLinesReapsWaiter pins the harder variant of
// the reaping regression: the dead client has extra request lines
// pipelined behind its blocked acquire. The server's reader must never
// park on the handoff of those lines — if it did, it would never see the
// EOF and the ghost acquire would keep competing.
func TestDisconnectWithPipelinedLinesReapsWaiter(t *testing.T) {
	srv, mgr, addr := startServer(t, lockmgr.Config{HandlesPerLock: 2, Shards: 1})

	holder, err := client.DialConn(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer holder.Close()
	if err := holder.Acquire("k"); err != nil {
		t.Fatal(err)
	}

	// A raw connection pipelines an acquire that will block plus several
	// more lines the processing loop won't reach, then drops.
	raw, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	lines := `{"op":"acquire","name":"k"}` + "\n" +
		`{"op":"acquire","name":"k2"}` + "\n" +
		`{"op":"ping"}` + "\n" +
		`{"op":"ping"}` + "\n"
	if _, err := raw.Write([]byte(lines)); err != nil {
		t.Fatal(err)
	}
	waitFor(t, 2*time.Second, "the pipelined session to connect", func() bool {
		return srv.Sessions() == 2
	})
	time.Sleep(50 * time.Millisecond) // let the acquire block behind the holder
	raw.Close()

	// The lock is still held the whole time, so only reaping — not a
	// release — can end the dead session.
	waitFor(t, 2*time.Second, "the dead pipelined session to be reaped", func() bool {
		return srv.Sessions() == 1
	})
	waitFor(t, 2*time.Second, "the ghost acquire to be withdrawn", func() bool {
		c := mgr.Counters()
		return c.Aborts+c.LeaseTimeouts >= 1
	})
	if err := holder.Release("k"); err != nil {
		t.Fatal(err)
	}
	if v := mgr.Violations(); v != 0 {
		t.Fatalf("%d violations", v)
	}
}

// TestAcquireTimeoutMS: a deadline-bounded acquire of a held lock comes
// back aborted, steps the server's abort counters, and leaves the lock
// acquirable.
func TestAcquireTimeoutMS(t *testing.T) {
	_, _, addr := startServer(t, lockmgr.Config{HandlesPerLock: 2, Shards: 1})
	a, err := client.DialConn(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	b, err := client.DialConn(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()

	if err := a.Acquire("k"); err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	ok, err := b.AcquireFor("k", 25*time.Millisecond)
	if err != nil {
		t.Fatalf("AcquireFor: %v", err)
	}
	if ok {
		t.Fatal("AcquireFor acquired a held lock")
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("bounded acquire took %v", elapsed)
	}
	st, err := b.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.Aborts+st.LeaseTimeouts == 0 {
		t.Fatalf("stats after timeout: %+v, want a nonzero abort tally", st)
	}
	if held, err := b.Holds("k"); err != nil || held {
		t.Fatalf("Holds after aborted acquire: held=%v err=%v", held, err)
	}
	if err := a.Release("k"); err != nil {
		t.Fatal(err)
	}
	ok, err = b.AcquireFor("k", 2*time.Second)
	if err != nil || !ok {
		t.Fatalf("AcquireFor after release = (%v, %v), want (true, nil)", ok, err)
	}
	if err := b.Release("k"); err != nil {
		t.Fatal(err)
	}
}

// TestCancelChasesBlockedAcquire: a Cancel issued on the same session
// unblocks an in-flight unbounded Acquire with ErrAborted, in order.
func TestCancelChasesBlockedAcquire(t *testing.T) {
	_, _, addr := startServer(t, lockmgr.Config{HandlesPerLock: 2, Shards: 1})
	a, err := client.DialConn(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	b, err := client.DialConn(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()

	if err := a.Acquire("k"); err != nil {
		t.Fatal(err)
	}
	got := make(chan error, 1)
	go func() { got <- b.Acquire("k") }()
	time.Sleep(20 * time.Millisecond) // let the acquire block server-side
	if err := b.Cancel("k"); err != nil {
		t.Fatalf("Cancel: %v", err)
	}
	select {
	case err := <-got:
		if !errors.Is(err, client.ErrAborted) {
			t.Fatalf("cancelled Acquire = %v, want ErrAborted", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("cancelled Acquire did not return")
	}

	// A cancel with no acquire in flight applies to the next one: the
	// remembered-cancellation rule that closes the pipelining race.
	if err := b.Cancel("k"); err != nil {
		t.Fatal(err)
	}
	if err := b.Acquire("k"); !errors.Is(err, client.ErrAborted) {
		t.Fatalf("Acquire after remembered cancel = %v, want ErrAborted", err)
	}
	// The remembered cancel is consumed: the next acquire is normal.
	if err := a.Release("k"); err != nil {
		t.Fatal(err)
	}
	if err := b.Acquire("k"); err != nil {
		t.Fatalf("Acquire after consumed cancel: %v", err)
	}
	if err := b.Release("k"); err != nil {
		t.Fatal(err)
	}
}

// TestServerMaxWaitCapsUnboundedAcquire: with MaxWait set, even an
// unbounded acquire of a held lock aborts.
func TestServerMaxWaitCapsUnboundedAcquire(t *testing.T) {
	mgr, err := lockmgr.New(lockmgr.Config{HandlesPerLock: 2, Shards: 1})
	if err != nil {
		t.Fatal(err)
	}
	srv := lockd.NewServer(mgr)
	srv.MaxWait = 25 * time.Millisecond
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ln) }()
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			t.Errorf("Shutdown: %v", err)
		}
		if err := <-serveErr; err != nil {
			t.Errorf("Serve: %v", err)
		}
	}()

	a, err := client.DialConn(ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	b, err := client.DialConn(ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	if err := a.Acquire("k"); err != nil {
		t.Fatal(err)
	}
	if err := b.Acquire("k"); !errors.Is(err, client.ErrAborted) {
		t.Fatalf("capped unbounded Acquire = %v, want ErrAborted", err)
	}
	if err := a.Release("k"); err != nil {
		t.Fatal(err)
	}
}
