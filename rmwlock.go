package anonmutex

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"anonmutex/internal/amem"
	"anonmutex/internal/core"
	"anonmutex/internal/engine"
	"anonmutex/internal/id"
	"anonmutex/internal/mset"
)

// RMWLock is the paper's Algorithm 2: an n-process symmetric deadlock-free
// mutual exclusion lock over m anonymous read/modify/write registers
// (read, write, and compare&swap), for any m ∈ M(n) — including the
// degenerate single-register memory. Entering the critical section
// requires owning a strict majority of the registers, the RMW model's
// cheaper entry cost.
type RMWLock struct {
	n, m int
	cfg  config
	mem  *amem.Memory
	gen  *id.Generator

	mu     sync.Mutex
	issued int
	free   []*RMWProcess // closed handles awaiting re-lease
}

// NewRMWLock creates an anonymous RMW-register lock for n ≥ 2 processes.
// Without WithRegisters the memory size is MinRegistersRMW(n) (the
// smallest non-degenerate member of M(n)); any explicit m ∈ M(n) is legal,
// including m = 1.
func NewRMWLock(n int, opts ...Option) (*RMWLock, error) {
	cfg, err := buildConfig(opts)
	if err != nil {
		return nil, err
	}
	if n < 2 {
		return nil, fmt.Errorf("anonmutex: RMWLock needs n >= 2 processes, got %d", n)
	}
	m := cfg.m
	if m == 0 {
		m = mset.MinRMWAbove(n)
	}
	if err := mset.ValidateRMW(n, m); err != nil {
		return nil, fmt.Errorf("anonmutex: %w", err)
	}
	return &RMWLock{n: n, m: m, cfg: cfg, mem: amem.New(m), gen: id.NewGenerator()}, nil
}

// N returns the configured number of processes.
func (l *RMWLock) N() int { return l.n }

// M returns the anonymous memory size.
func (l *RMWLock) M() int { return l.m }

// NewProcess allocates one of the lock's n process handles: a fresh slot
// while any remain, otherwise a handle recycled by Close. When all n
// slots are live it returns an error; Close a handle to free one.
func (l *RMWLock) NewProcess() (*RMWProcess, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if k := len(l.free); k > 0 {
		p := l.free[k-1]
		l.free = l.free[:k-1]
		p.closed = false
		return p, nil
	}
	if l.issued >= l.n {
		return nil, fmt.Errorf("anonmutex: RMWLock configured for %d processes and none released", l.n)
	}
	i := l.issued
	me, err := l.gen.New()
	if err != nil {
		return nil, fmt.Errorf("anonmutex: issuing identity: %w", err)
	}
	machine, err := core.NewAlg2(me, l.n, l.m, core.Alg2Config{SoloFastPath: !l.cfg.noFastPath})
	if err != nil {
		return nil, fmt.Errorf("anonmutex: %w", err)
	}
	view, err := l.mem.NewView(me, l.cfg.adversary().Assign(i, l.m))
	if err != nil {
		return nil, fmt.Errorf("anonmutex: %w", err)
	}
	l.issued++
	return &RMWProcess{
		lock:    l,
		machine: machine,
		driver:  engine.NewDriver(machine, engine.Hardware(view)),
	}, nil
}

// RMWProcess is one process's handle on an RMWLock. Not safe for
// concurrent use.
type RMWProcess struct {
	lock    *RMWLock
	machine *core.Alg2Machine
	driver  *engine.Driver
	closed  bool
}

// Lock acquires the critical section. It returns an error only on
// life-cycle misuse.
func (p *RMWProcess) Lock() error {
	if p.closed {
		return fmt.Errorf("anonmutex: Lock on a closed handle")
	}
	if err := p.machine.StartLock(); err != nil {
		return fmt.Errorf("anonmutex: %w", err)
	}
	if err := p.driver.Drive(); err != nil {
		return fmt.Errorf("anonmutex: %w", err)
	}
	return nil
}

// LockCtx acquires the critical section, abandoning the attempt when ctx
// is cancelled or its deadline passes. An abandoned attempt withdraws
// cleanly: a compare&swap erase sweep removes the process's identity from
// every register (bounded, wait-free), so the remaining competitors
// proceed as if this process had never entered the entry section.
// Cancellation is reported as ctx's error (test with errors.Is against
// context.Canceled or DeadlineExceeded); if the lock is acquired before
// the cancellation is observed, LockCtx returns nil and the caller holds
// the lock.
func (p *RMWProcess) LockCtx(ctx context.Context) error {
	if p.closed {
		return fmt.Errorf("anonmutex: LockCtx on a closed handle")
	}
	if err := ctx.Err(); err != nil {
		return fmt.Errorf("anonmutex: lock aborted: %w", err)
	}
	if err := p.machine.StartLock(); err != nil {
		return fmt.Errorf("anonmutex: %w", err)
	}
	if err := p.driver.DriveContext(ctx); err != nil {
		return fmt.Errorf("anonmutex: lock aborted: %w", err)
	}
	return nil
}

// TryLock attempts the critical section without waiting: it runs at
// most 2m+2 shared-memory operations — enough for any uncontended
// acquisition (m with the solo fast path, 2m without) — and, if the
// lock has not been entered by then, withdraws via the bounded erase
// sweep and reports false. The whole call executes a hard-bounded
// number of operations and never sleeps, unlike TryLockFor's
// wall-clock bound. Errors are reserved for life-cycle misuse.
func (p *RMWProcess) TryLock() (bool, error) {
	if p.closed {
		return false, fmt.Errorf("anonmutex: TryLock on a closed handle")
	}
	if err := p.machine.StartLock(); err != nil {
		return false, fmt.Errorf("anonmutex: %w", err)
	}
	ok, err := p.driver.TryDriveBounded(2*p.lock.m + 2)
	if err != nil {
		return false, fmt.Errorf("anonmutex: %w", err)
	}
	return ok, nil
}

// TryLockFor acquires the critical section if it can do so within d,
// reporting whether the lock is now held. Expiry is not an error: the
// attempt withdraws cleanly (see LockCtx) and TryLockFor returns
// (false, nil). Errors are reserved for life-cycle misuse.
func (p *RMWProcess) TryLockFor(d time.Duration) (bool, error) {
	ctx, cancel := context.WithTimeout(context.Background(), d)
	defer cancel()
	err := p.LockCtx(ctx)
	switch {
	case err == nil:
		return true, nil
	case errors.Is(err, context.DeadlineExceeded):
		return false, nil
	default:
		return false, err
	}
}

// Aborts reports how many lock attempts this handle has withdrawn
// (LockCtx cancellations and TryLockFor expiries).
func (p *RMWProcess) Aborts() uint64 { return p.driver.Aborts() }

// Unlock releases the critical section. It returns an error only on
// life-cycle misuse.
func (p *RMWProcess) Unlock() error {
	if p.closed {
		return fmt.Errorf("anonmutex: Unlock on a closed handle")
	}
	if err := p.machine.StartUnlock(); err != nil {
		return fmt.Errorf("anonmutex: %w", err)
	}
	if err := p.driver.Drive(); err != nil {
		return fmt.Errorf("anonmutex: %w", err)
	}
	return nil
}

// Close releases the handle's slot back to the lock so a future
// NewProcess call can re-lease it. Only an idle handle (not holding the
// lock) can be closed; an idle Algorithm 2 process owns no registers, and
// the slot keeps its identity, permutation, and write-stamp sequence, so
// re-leasing is equivalent to the handle changing goroutines. Using a
// handle after Close is a bug; its methods fail until it is re-leased.
func (p *RMWProcess) Close() error {
	if p.closed {
		return fmt.Errorf("anonmutex: Close on a closed handle")
	}
	if p.machine.Status() != core.StatusIdle {
		return fmt.Errorf("anonmutex: Close on a handle that holds the lock")
	}
	l := p.lock
	l.mu.Lock()
	defer l.mu.Unlock()
	p.closed = true
	l.free = append(l.free, p)
	return nil
}

// LockSteps reports the number of shared-memory operations performed by
// the most recent Lock call.
func (p *RMWProcess) LockSteps() int { return p.machine.LockSteps() }

// OwnedAtEntry reports how many registers held this process's identity
// when it last entered the critical section — always a strict majority of
// M(), and typically far less than all of it: the paper's RMW-model entry
// cost.
func (p *RMWProcess) OwnedAtEntry() int { return p.machine.OwnedAtEntry() }
