package anonmutex

import (
	"fmt"
	"sync"

	"anonmutex/internal/amem"
	"anonmutex/internal/core"
	"anonmutex/internal/engine"
	"anonmutex/internal/id"
	"anonmutex/internal/mset"
)

// RMWLock is the paper's Algorithm 2: an n-process symmetric deadlock-free
// mutual exclusion lock over m anonymous read/modify/write registers
// (read, write, and compare&swap), for any m ∈ M(n) — including the
// degenerate single-register memory. Entering the critical section
// requires owning a strict majority of the registers, the RMW model's
// cheaper entry cost.
type RMWLock struct {
	n, m int
	cfg  config
	mem  *amem.Memory
	gen  *id.Generator

	mu     sync.Mutex
	issued int
}

// NewRMWLock creates an anonymous RMW-register lock for n ≥ 2 processes.
// Without WithRegisters the memory size is MinRegistersRMW(n) (the
// smallest non-degenerate member of M(n)); any explicit m ∈ M(n) is legal,
// including m = 1.
func NewRMWLock(n int, opts ...Option) (*RMWLock, error) {
	cfg, err := buildConfig(opts)
	if err != nil {
		return nil, err
	}
	if n < 2 {
		return nil, fmt.Errorf("anonmutex: RMWLock needs n >= 2 processes, got %d", n)
	}
	m := cfg.m
	if m == 0 {
		m = mset.MinRMWAbove(n)
	}
	if err := mset.ValidateRMW(n, m); err != nil {
		return nil, fmt.Errorf("anonmutex: %w", err)
	}
	return &RMWLock{n: n, m: m, cfg: cfg, mem: amem.New(m), gen: id.NewGenerator()}, nil
}

// N returns the configured number of processes.
func (l *RMWLock) N() int { return l.n }

// M returns the anonymous memory size.
func (l *RMWLock) M() int { return l.m }

// NewProcess allocates the next of the n process handles.
func (l *RMWLock) NewProcess() (*RMWProcess, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.issued >= l.n {
		return nil, fmt.Errorf("anonmutex: RMWLock configured for %d processes", l.n)
	}
	i := l.issued
	me, err := l.gen.New()
	if err != nil {
		return nil, fmt.Errorf("anonmutex: issuing identity: %w", err)
	}
	machine, err := core.NewAlg2(me, l.n, l.m, core.Alg2Config{})
	if err != nil {
		return nil, fmt.Errorf("anonmutex: %w", err)
	}
	view, err := l.mem.NewView(me, l.cfg.adversary().Assign(i, l.m))
	if err != nil {
		return nil, fmt.Errorf("anonmutex: %w", err)
	}
	l.issued++
	return &RMWProcess{
		machine: machine,
		driver:  engine.NewDriver(machine, engine.Hardware(view)),
	}, nil
}

// RMWProcess is one process's handle on an RMWLock. Not safe for
// concurrent use.
type RMWProcess struct {
	machine *core.Alg2Machine
	driver  *engine.Driver
}

// Lock acquires the critical section. It returns an error only on
// life-cycle misuse.
func (p *RMWProcess) Lock() error {
	if err := p.machine.StartLock(); err != nil {
		return fmt.Errorf("anonmutex: %w", err)
	}
	if err := p.driver.Drive(); err != nil {
		return fmt.Errorf("anonmutex: %w", err)
	}
	return nil
}

// Unlock releases the critical section. It returns an error only on
// life-cycle misuse.
func (p *RMWProcess) Unlock() error {
	if err := p.machine.StartUnlock(); err != nil {
		return fmt.Errorf("anonmutex: %w", err)
	}
	if err := p.driver.Drive(); err != nil {
		return fmt.Errorf("anonmutex: %w", err)
	}
	return nil
}

// LockSteps reports the number of shared-memory operations performed by
// the most recent Lock call.
func (p *RMWProcess) LockSteps() int { return p.machine.LockSteps() }

// OwnedAtEntry reports how many registers held this process's identity
// when it last entered the critical section — always a strict majority of
// M(), and typically far less than all of it: the paper's RMW-model entry
// cost.
func (p *RMWProcess) OwnedAtEntry() int { return p.machine.OwnedAtEntry() }
