// Package anonmutex implements symmetric deadlock-free mutual exclusion
// over anonymous shared memory, reproducing the algorithms of Aghazadeh,
// Imbs, Raynal, Taubenfeld, and Woelfel, "Optimal Memory-Anonymous
// Symmetric Deadlock-Free Mutual Exclusion" (PODC 2019).
//
// # The model
//
// Processes communicate only through an array of m atomic registers, and
// an adversary gives every process its own private permutation of the
// register indices: the same local name can denote different physical
// registers for different processes ("memory anonymity"). Process
// identities are opaque and support only equality comparison ("symmetric
// algorithms"). Let
//
//	M(n) = { m : ∀ ℓ, 1 < ℓ ≤ n : gcd(ℓ, m) = 1 }.
//
// The paper proves this set tightly characterizes the solvable memory
// sizes, and this package implements both optimal algorithms:
//
//   - RWLock (the paper's Algorithm 1) uses read/write registers only and
//     works for every m ∈ M(n) with m ≥ n. A process enters the critical
//     section only after observing a snapshot in which it owns all m
//     registers.
//   - RMWLock (Algorithm 2) additionally uses compare&swap and works for
//     every m ∈ M(n), including the degenerate m = 1. A process enters
//     after owning a strict majority of the registers.
//
// # Usage
//
//	lock, err := anonmutex.NewRWLock(4) // 4 processes, m = 5 registers
//	if err != nil { ... }
//	p, err := lock.NewProcess() // one handle per participating goroutine
//	if err != nil { ... }
//	p.Lock()
//	// critical section
//	p.Unlock()
//
// Each process handle must be used by one goroutine at a time; Close
// returns a handle's slot to the lock so NewProcess can re-lease it to
// another goroutine. The locks are deadlock-free but — like the paper's
// algorithms — not starvation-free: an individual process can be bypassed
// arbitrarily often while the system as a whole always makes progress.
//
// Acquisition is abortable: LockCtx(ctx) abandons the attempt when the
// context ends, and TryLockFor(d) bounds it by a duration. An abandoned
// attempt withdraws — a bounded wait-free sweep erases the process's
// identity from every register, leaving the shared memory exactly as if
// it had never competed (see DESIGN.md for the protocol and its safety
// argument).
//
// # Architecture
//
// The algorithms are implemented once, as explicit state machines
// (internal/core) that request shared-memory operations and consume
// results. A unified execution engine (internal/engine) runs those
// machines on either of two substrates behind one Executor interface:
// hardware-atomic anonymous memory (internal/amem — what these locks
// use, via the engine's adaptive-backoff Driver) and simulated memory
// (internal/vmem — what the deterministic scheduler, model checker, and
// lower-bound constructions use). Because both substrates execute the
// identical op stream, simulated evidence (exhaustive model checking,
// adversarial schedules) transfers directly to the production locks; the
// engine's equivalence tests pin this down trace-for-trace.
//
// Executions are described declaratively by scenarios
// (internal/scenario): one JSON-encodable spec — algorithm, sizes,
// anonymity adversary, schedule, workload profile, seeds — runs on
// either substrate, from the sim package (RunScenario), the anonsim
// command (-scenario, -substrate), or the experiment suite (anonbench,
// which sweeps the whole registry and can run experiments on a worker
// pool with -parallel and emit JSON with -json). DESIGN.md has the layer
// diagram and the experiment catalog.
//
// Above the locks sits a service layer: internal/lockmgr shards a
// namespace of named locks (each lazily backed by its own
// anonymous-register arena, with a lease pool multiplexing unbounded
// clients onto the fixed n handles via Close/re-lease), lockd serves it
// over TCP (cmd/anonlockd), and cmd/anonload generates client load
// against either. DESIGN.md documents the whole stack.
//
// The companion packages anonmutex/mnum (the M(n) number theory) and
// anonmutex/sim (deterministic simulation, model checking, scenarios,
// and the Theorem 5 lower-bound constructions) expose the research
// tooling.
package anonmutex

import (
	"fmt"

	"anonmutex/internal/mset"
	"anonmutex/internal/perm"
	"anonmutex/internal/xrand"
)

// PermutationMode selects how the built-in anonymity adversary assigns
// register-name permutations to processes.
type PermutationMode uint8

const (
	// PermRandom assigns independent seeded random permutations — the
	// default, modeling an arbitrary adversary.
	PermRandom PermutationMode = iota + 1
	// PermIdentity gives every process the identity permutation, i.e. a
	// conventional non-anonymous memory. Useful for baselines: it
	// isolates the cost of the algorithm from the cost of anonymity.
	PermIdentity
	// PermRotation gives process i the rotation by i·step — the Theorem 5
	// ring adversary.
	PermRotation
)

// String returns the mode name.
func (m PermutationMode) String() string {
	switch m {
	case PermRandom:
		return "random"
	case PermIdentity:
		return "identity"
	case PermRotation:
		return "rotation"
	default:
		return fmt.Sprintf("PermutationMode(%d)", uint8(m))
	}
}

// config carries the shared options of both lock types.
type config struct {
	m            int // 0: derive from n
	seed         uint64
	mode         PermutationMode
	rotationStep int
	firstBottom  bool // RWLock: deterministic hole choice instead of random
	noFastPath   bool // RMWLock: disable the solo fast path
}

// Option configures NewRWLock and NewRMWLock.
type Option func(*config) error

// WithRegisters sets the anonymous memory size m explicitly. The
// constructor validates m against the paper's tight characterization
// (m ∈ M(n), plus m ≥ n for the RW model).
func WithRegisters(m int) Option {
	return func(c *config) error {
		if m < 1 {
			return fmt.Errorf("anonmutex: memory size must be >= 1, got %d", m)
		}
		c.m = m
		return nil
	}
}

// WithSeed sets the seed for all randomized behavior (the permutation
// adversary and Algorithm 1's randomized hole choice). Locks with equal
// configuration and seed behave identically. The default seed is 1.
func WithSeed(seed uint64) Option {
	return func(c *config) error {
		c.seed = seed
		return nil
	}
}

// WithPermutations selects the anonymity adversary. step is used only by
// PermRotation.
func WithPermutations(mode PermutationMode, step int) Option {
	return func(c *config) error {
		switch mode {
		case PermRandom, PermIdentity, PermRotation:
			c.mode = mode
			c.rotationStep = step
			return nil
		default:
			return fmt.Errorf("anonmutex: unknown permutation mode %v", mode)
		}
	}
}

// WithDeterministicClaims makes RWLock processes claim the lowest-indexed
// free register (the paper's "any ⊥ register" resolved deterministically)
// instead of a seeded random one. Mainly useful for reproducible traces;
// random claims collide less under contention.
func WithDeterministicClaims() Option {
	return func(c *config) error {
		c.firstBottom = true
		return nil
	}
}

// WithoutSoloFastPath disables the uncontended fast path. By default an
// RMWLock process whose line 2 sweep wins every compare&swap enters the
// critical section directly, skipping the read-back sweep — m operations
// instead of 2m, exhaustively verified safe by the model checker
// (internal/explore). Disable it for step-count comparisons against the
// line-faithful simulator, which runs the paper's algorithm verbatim.
//
// RWLock ignores this option: the analogous read/write-model shortcut
// (batch-claiming an all-⊥ snapshot) is provably unsafe — the model
// checker exhibits a two-processes-in-CS execution — so the RW lock
// always runs the paper's one-claim-per-snapshot protocol. See DESIGN.md
// ("Performance") for both results.
func WithoutSoloFastPath() Option {
	return func(c *config) error {
		c.noFastPath = true
		return nil
	}
}

func buildConfig(opts []Option) (config, error) {
	c := config{seed: 1, mode: PermRandom}
	for _, o := range opts {
		if err := o(&c); err != nil {
			return config{}, err
		}
	}
	return c, nil
}

// adversary materializes the configured permutation adversary.
func (c config) adversary() perm.Adversary {
	switch c.mode {
	case PermIdentity:
		return perm.IdentityAdversary{}
	case PermRotation:
		return perm.RotationAdversary{Step: c.rotationStep}
	default:
		return perm.RandomAdversary{Seed: c.seed}
	}
}

// rng derives a per-process PRNG.
func (c config) rng(i int) *xrand.Rand {
	return xrand.New(xrand.Mix64(c.seed ^ (uint64(i)+0x1234)*0x9e3779b97f4a7c15))
}

// MinRegistersRW returns the smallest legal memory size for an n-process
// RWLock: the smallest m ≥ n in M(n) (the smallest prime above n).
func MinRegistersRW(n int) int { return mset.MinRW(n) }

// MinRegistersRMW returns the smallest non-degenerate legal memory size
// for an n-process RMWLock (m = 1 is also legal; see mnum.MinRMW).
func MinRegistersRMW(n int) int { return mset.MinRMWAbove(n) }
