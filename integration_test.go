package anonmutex_test

// Cross-module integration tests: the public locks against the simulated
// substrate, adversarial conditions on real hardware, and agreement
// between the two execution substrates.

import (
	"sync"
	"testing"
	"time"

	"anonmutex"
	"anonmutex/sim"
)

// TestSubstrateAgreementSolo: a solo, deterministic acquisition must cost
// exactly the same number of shared-memory steps on the real lock
// (hardware atomics) and in the simulator — 2m+1 for Algorithm 1, 2m for
// Algorithm 2 run without its solo fast path (the simulator runs the
// paper's algorithm verbatim). The default RMW lock enables the fast
// path and must enter in exactly m operations.
func TestSubstrateAgreementSolo(t *testing.T) {
	for _, n := range []int{2, 4, 6} {
		m := anonmutex.MinRegistersRW(n)

		rw, err := anonmutex.NewRWLock(n, anonmutex.WithDeterministicClaims(),
			anonmutex.WithPermutations(anonmutex.PermIdentity, 0))
		if err != nil {
			t.Fatal(err)
		}
		p, err := rw.NewProcess()
		if err != nil {
			t.Fatal(err)
		}
		if err := p.Lock(); err != nil {
			t.Fatal(err)
		}
		realSteps := p.LockSteps()
		if err := p.Unlock(); err != nil {
			t.Fatal(err)
		}

		simRes, err := sim.Run(sim.Config{Algorithm: sim.RW, N: 1, M: m, Unchecked: true})
		if err != nil {
			t.Fatal(err)
		}
		if realSteps != simRes.PerProc[0].LockSteps {
			t.Errorf("n=%d: real lock used %d steps, simulator %d", n, realSteps, simRes.PerProc[0].LockSteps)
		}
		if want := 2*m + 1; realSteps != want {
			t.Errorf("n=%d: solo RW steps = %d, want 2m+1 = %d", n, realSteps, want)
		}

		rmw, err := anonmutex.NewRMWLock(n, anonmutex.WithoutSoloFastPath())
		if err != nil {
			t.Fatal(err)
		}
		q, err := rmw.NewProcess()
		if err != nil {
			t.Fatal(err)
		}
		if err := q.Lock(); err != nil {
			t.Fatal(err)
		}
		if want := 2 * rmw.M(); q.LockSteps() != want {
			t.Errorf("n=%d: solo RMW steps = %d, want 2m = %d", n, q.LockSteps(), want)
		}
		if err := q.Unlock(); err != nil {
			t.Fatal(err)
		}

		fast, err := anonmutex.NewRMWLock(n)
		if err != nil {
			t.Fatal(err)
		}
		f, err := fast.NewProcess()
		if err != nil {
			t.Fatal(err)
		}
		if err := f.Lock(); err != nil {
			t.Fatal(err)
		}
		if want := fast.M(); f.LockSteps() != want {
			t.Errorf("n=%d: solo fast-path RMW steps = %d, want m = %d", n, f.LockSteps(), want)
		}
		if got := f.OwnedAtEntry(); got != fast.M() {
			t.Errorf("n=%d: solo fast-path OwnedAtEntry = %d, want m = %d", n, got, fast.M())
		}
		if err := f.Unlock(); err != nil {
			t.Fatal(err)
		}
	}
}

// TestRealLockUnderStalls: a process that goes to sleep while competing
// (asynchrony) must not block others, and a process sleeping INSIDE the
// critical section must block everyone — both are the model's intended
// semantics.
func TestRealLockUnderStalls(t *testing.T) {
	lock, err := anonmutex.NewRMWLock(3)
	if err != nil {
		t.Fatal(err)
	}
	holder, err := lock.NewProcess()
	if err != nil {
		t.Fatal(err)
	}
	waiter, err := lock.NewProcess()
	if err != nil {
		t.Fatal(err)
	}
	if err := holder.Lock(); err != nil {
		t.Fatal(err)
	}

	acquired := make(chan struct{})
	go func() {
		if err := waiter.Lock(); err != nil {
			t.Error(err)
		}
		close(acquired)
		if err := waiter.Unlock(); err != nil {
			t.Error(err)
		}
	}()

	select {
	case <-acquired:
		t.Fatal("waiter acquired while holder was in the CS")
	case <-time.After(30 * time.Millisecond):
	}
	if err := holder.Unlock(); err != nil {
		t.Fatal(err)
	}
	select {
	case <-acquired:
	case <-time.After(5 * time.Second):
		t.Fatal("waiter never acquired after unlock — deadlock-freedom violated")
	}
}

// TestRotationRingOnRealHardware: the Theorem 5 adversary (rotation
// permutations on a divisible... here legal m) cannot break the real
// locks: the Go scheduler's asynchrony breaks lock-step symmetry.
func TestRotationRingOnRealHardware(t *testing.T) {
	for _, mk := range []func() ([]proc, error){
		func() ([]proc, error) {
			l, err := anonmutex.NewRWLock(2, anonmutex.WithRegisters(3),
				anonmutex.WithPermutations(anonmutex.PermRotation, 1))
			if err != nil {
				return nil, err
			}
			return procs2(l.NewProcess)
		},
		func() ([]proc, error) {
			l, err := anonmutex.NewRMWLock(2, anonmutex.WithRegisters(3),
				anonmutex.WithPermutations(anonmutex.PermRotation, 1))
			if err != nil {
				return nil, err
			}
			return procs2(l.NewProcess)
		},
	} {
		ps, err := mk()
		if err != nil {
			t.Fatal(err)
		}
		counter := 0
		var wg sync.WaitGroup
		for _, p := range ps {
			p := p
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := 0; i < 200; i++ {
					if err := p.Lock(); err != nil {
						t.Error(err)
						return
					}
					counter++
					if err := p.Unlock(); err != nil {
						t.Error(err)
						return
					}
				}
			}()
		}
		wg.Wait()
		if counter != 400 {
			t.Fatalf("counter = %d, want 400", counter)
		}
	}
}

type proc interface {
	Lock() error
	Unlock() error
}

func procs2[T proc](mk func() (T, error)) ([]proc, error) {
	a, err := mk()
	if err != nil {
		return nil, err
	}
	b, err := mk()
	if err != nil {
		return nil, err
	}
	return []proc{a, b}, nil
}

// TestIndependentLocksDoNotInterfere: two separate anonymous memories
// guard two separate counters; goroutines use both.
func TestIndependentLocksDoNotInterfere(t *testing.T) {
	const n, iters = 2, 150
	l1, err := anonmutex.NewRMWLock(n)
	if err != nil {
		t.Fatal(err)
	}
	l2, err := anonmutex.NewRMWLock(n, anonmutex.WithRegisters(1))
	if err != nil {
		t.Fatal(err)
	}
	c1, c2 := 0, 0
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		p1, err := l1.NewProcess()
		if err != nil {
			t.Fatal(err)
		}
		p2, err := l2.NewProcess()
		if err != nil {
			t.Fatal(err)
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			for k := 0; k < iters; k++ {
				if err := p1.Lock(); err != nil {
					t.Error(err)
					return
				}
				c1++
				if err := p1.Unlock(); err != nil {
					t.Error(err)
					return
				}
				if err := p2.Lock(); err != nil {
					t.Error(err)
					return
				}
				c2++
				if err := p2.Unlock(); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()
	if c1 != n*iters || c2 != n*iters {
		t.Fatalf("counters = %d, %d; want %d each", c1, c2, n*iters)
	}
}

// TestManySessionsReuse: process handles survive thousands of sessions
// and the memory always returns to all-⊥ between solo sessions.
func TestManySessionsReuse(t *testing.T) {
	lock, err := anonmutex.NewRWLock(2)
	if err != nil {
		t.Fatal(err)
	}
	p, err := lock.NewProcess()
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3000; i++ {
		if err := p.Lock(); err != nil {
			t.Fatal(err)
		}
		if err := p.Unlock(); err != nil {
			t.Fatal(err)
		}
	}
	if got := p.OwnedAtEntry(); got != lock.M() {
		t.Errorf("OwnedAtEntry = %d after reuse", got)
	}
}

// TestSimLockStepWedgeMatchesModelCheckTrap: the two verification
// methods must agree about illegal sizes: the scheduler's lock-step cycle
// detection and the model checker's trap detection both condemn m=4, n=2
// for the RW algorithm.
func TestSimLockStepWedgeMatchesModelCheckTrap(t *testing.T) {
	wedge, err := sim.Run(sim.Config{
		Algorithm: sim.RW, N: 2, M: 4, Unchecked: true,
		Schedule: sim.LockStepSchedule, Perms: sim.RotationPerms, RotationStep: 2,
		DetectCycles: true, MaxSteps: 100_000,
	})
	if err != nil {
		t.Fatal(err)
	}
	checked, err := sim.Check(sim.Config{Algorithm: sim.RW, N: 2, M: 4, Unchecked: true})
	if err != nil {
		t.Fatal(err)
	}
	if !wedge.CycleDetected {
		t.Error("scheduler found no livelock cycle")
	}
	if checked.Traps == 0 {
		t.Error("model checker found no trap")
	}
	if wedge.Entries != 0 {
		t.Error("entries occurred inside the wedge")
	}
}

// TestPublicConstantsAgree: the public minimum-size helpers must agree
// with the locks' automatic choices.
func TestPublicConstantsAgree(t *testing.T) {
	for n := 2; n <= 12; n++ {
		rw, err := anonmutex.NewRWLock(n)
		if err != nil {
			t.Fatal(err)
		}
		if rw.M() != anonmutex.MinRegistersRW(n) {
			t.Errorf("n=%d: RWLock chose m=%d, MinRegistersRW=%d", n, rw.M(), anonmutex.MinRegistersRW(n))
		}
		rmw, err := anonmutex.NewRMWLock(n)
		if err != nil {
			t.Fatal(err)
		}
		if rmw.M() != anonmutex.MinRegistersRMW(n) {
			t.Errorf("n=%d: RMWLock chose m=%d, MinRegistersRMW=%d", n, rmw.M(), anonmutex.MinRegistersRMW(n))
		}
	}
}
