package sim_test

import (
	"testing"

	"anonmutex/internal/scenario"
	"anonmutex/sim"
)

func TestScenariosListed(t *testing.T) {
	names := sim.Scenarios()
	if len(names) == 0 {
		t.Fatal("no scenarios registered")
	}
	seen := map[string]bool{}
	for _, n := range names {
		seen[n] = true
	}
	for _, want := range []string{"smoke-rw", "smoke-rmw", "lockstep-livelock", "contended-rw"} {
		if !seen[want] {
			t.Errorf("built-in scenario %q missing from %v", want, names)
		}
	}
}

func TestRunScenarioEveryBuiltIn(t *testing.T) {
	for _, name := range sim.Scenarios() {
		res, err := sim.RunScenario(name)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if res.MEViolations != 0 {
			t.Errorf("%s: %d mutual-exclusion violations", name, res.MEViolations)
		}
		if name == "lockstep-livelock" {
			if !res.CycleDetected || res.Entries != 0 {
				t.Errorf("%s: expected a livelock verdict, got %+v", name, res)
			}
			continue
		}
		if !res.Completed {
			t.Errorf("%s: did not complete (%d steps)", name, res.Steps)
		}
	}
}

func TestRunScenarioDeterministic(t *testing.T) {
	a, err := sim.RunScenario("contended-rw")
	if err != nil {
		t.Fatal(err)
	}
	b, err := sim.RunScenario("contended-rw")
	if err != nil {
		t.Fatal(err)
	}
	if a.Steps != b.Steps || a.Entries != b.Entries {
		t.Errorf("same scenario diverged: (%d,%d) vs (%d,%d)", a.Steps, a.Entries, b.Steps, b.Entries)
	}
}

func TestRunScenarioJSON(t *testing.T) {
	data, err := sim.ScenarioJSON("smoke-rw")
	if err != nil {
		t.Fatal(err)
	}
	res, err := sim.RunScenarioJSON(data)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Completed || res.Entries != 4 {
		t.Errorf("smoke-rw via JSON: completed=%v entries=%d, want true/4", res.Completed, res.Entries)
	}

	if _, err := sim.RunScenarioJSON([]byte(`{"algorithm":"rw"}`)); err == nil {
		t.Error("spec without n accepted")
	}
	if _, err := sim.RunScenarioJSON([]byte(`not json`)); err == nil {
		t.Error("malformed JSON accepted")
	}
	if _, err := sim.RunScenario("no-such"); err == nil {
		t.Error("unknown scenario name accepted")
	}
	if _, err := sim.ScenarioJSON("no-such"); err == nil {
		t.Error("unknown scenario name accepted by ScenarioJSON")
	}
}

// TestSimConsumesTrafficModel: with cs_ticks set and a non-uniform
// profile, the simulated scheduler draws per-session CS ticks from the
// scenario's traffic plan — deterministically, and differently from the
// constant-ticks configuration.
func TestSimConsumesTrafficModel(t *testing.T) {
	base := scenario.Spec{
		Algorithm: scenario.AlgRMW, N: 3, M: 1, Sessions: 4,
		Schedule: scenario.SchedRandom, Seed: 7,
		CSTicks: 5, MaxSteps: 20_000_000,
	}
	bursty := base
	bursty.Workload, bursty.WorkloadSeed = scenario.WorkloadBursty, 3

	a, err := sim.RunSpec(bursty)
	if err != nil {
		t.Fatal(err)
	}
	b, err := sim.RunSpec(bursty)
	if err != nil {
		t.Fatal(err)
	}
	if !a.Completed || a.MEViolations != 0 {
		t.Fatalf("bursty-traffic run misbehaved: %+v", a)
	}
	if a.Steps != b.Steps || a.Entries != b.Entries {
		t.Errorf("traffic-driven sim not deterministic: (%d,%d) vs (%d,%d)",
			a.Steps, a.Entries, b.Steps, b.Entries)
	}
	uniform, err := sim.RunSpec(base)
	if err != nil {
		t.Fatal(err)
	}
	if uniform.Steps == a.Steps {
		t.Errorf("bursty traffic did not change the schedule: both ran %d steps", a.Steps)
	}
}

func TestRunSpecMatchesRunConfig(t *testing.T) {
	// The same execution described declaratively and imperatively must
	// agree step for step.
	spec := scenario.Spec{
		Algorithm: scenario.AlgRW, N: 3, M: 5, Sessions: 2,
		Schedule: scenario.SchedRandom, Seed: 31,
		Perms: scenario.PermsRandom, PermSeed: 7,
	}
	a, err := sim.RunSpec(spec)
	if err != nil {
		t.Fatal(err)
	}
	b, err := sim.Run(sim.Config{
		Algorithm: sim.RW, N: 3, M: 5, Sessions: 2,
		Schedule: sim.RandomSchedule, Seed: 31,
		Perms: sim.RandomPerms, PermSeed: 7,
	})
	if err != nil {
		t.Fatal(err)
	}
	if a.Steps != b.Steps || a.Entries != b.Entries || a.Completed != b.Completed {
		t.Errorf("declarative (%d,%d,%v) vs imperative (%d,%d,%v)",
			a.Steps, a.Entries, a.Completed, b.Steps, b.Entries, b.Completed)
	}
}
