package sim

import "testing"

func TestRunRW(t *testing.T) {
	res, err := Run(Config{Algorithm: RW, N: 2, M: 3, Sessions: 2, Schedule: RandomSchedule, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Completed || res.MEViolations != 0 || res.Entries != 4 {
		t.Fatalf("completed=%v me=%d entries=%d", res.Completed, res.MEViolations, res.Entries)
	}
	if len(res.PerProc) != 2 {
		t.Fatalf("PerProc len %d", len(res.PerProc))
	}
	for i, ps := range res.PerProc {
		if ps.OwnedAtEntry != 3 {
			t.Errorf("proc %d owned %d at entry, want 3", i, ps.OwnedAtEntry)
		}
	}
}

func TestRunRMWWithTrace(t *testing.T) {
	res, err := Run(Config{Algorithm: RMW, N: 2, M: 3, TraceCap: 1000})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Completed || len(res.TraceLines) == 0 {
		t.Fatalf("completed=%v trace=%d", res.Completed, len(res.TraceLines))
	}
}

func TestRunValidatesSizes(t *testing.T) {
	if _, err := Run(Config{Algorithm: RW, N: 2, M: 4}); err == nil {
		t.Error("m=4 accepted without Unchecked")
	}
	res, err := Run(Config{
		Algorithm: RW, N: 2, M: 4, Unchecked: true,
		Perms: RotationPerms, RotationStep: 2,
		Schedule: LockStepSchedule, DetectCycles: true, MaxSteps: 100_000,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.CycleDetected {
		t.Error("lock-step wedge not detected through the public API")
	}
}

func TestRunUnknownEnums(t *testing.T) {
	if _, err := Run(Config{Algorithm: Algorithm(9), N: 2, M: 3}); err == nil {
		t.Error("unknown algorithm accepted")
	}
	if _, err := Run(Config{Algorithm: RW, N: 2, M: 3, Schedule: Schedule(9)}); err == nil {
		t.Error("unknown schedule accepted")
	}
	if _, err := Run(Config{Algorithm: RW, N: 2, M: 3, Perms: Permutations(9)}); err == nil {
		t.Error("unknown permutations accepted")
	}
}

func TestCheckLegalAndIllegal(t *testing.T) {
	legal, err := Check(Config{Algorithm: RMW, N: 2, M: 3})
	if err != nil {
		t.Fatal(err)
	}
	if !legal.OK() {
		t.Fatalf("legal config failed: me=%d traps=%d", legal.MEViolations, legal.Traps)
	}
	illegal, err := Check(Config{Algorithm: RMW, N: 2, M: 2, Unchecked: true})
	if err != nil {
		t.Fatal(err)
	}
	if illegal.Traps == 0 {
		t.Fatal("no trap found for m=2, n=2")
	}
	broken, err := Check(Config{Algorithm: Greedy, N: 2, M: 2, Unchecked: true})
	if err != nil {
		t.Fatal(err)
	}
	if broken.MEViolations == 0 {
		t.Fatal("greedy strawman passed mutual exclusion")
	}
}

func TestLowerBoundDichotomy(t *testing.T) {
	live, err := LowerBound(RMW, 2, 4, 0)
	if err != nil {
		t.Fatal(err)
	}
	if live.Outcome != Livelock || !live.SymmetryHeld || !live.Applicable {
		t.Fatalf("RMW l=2 m=4: %+v", live)
	}
	sim, err := LowerBound(Greedy, 3, 6, 0)
	if err != nil {
		t.Fatal(err)
	}
	if sim.Outcome != SimultaneousEntry || sim.Entrants != 3 {
		t.Fatalf("greedy l=3 m=6: %+v", sim)
	}
	prog, err := LowerBound(RW, 2, 5, 0)
	if err != nil {
		t.Fatal(err)
	}
	if prog.Outcome != Entry {
		t.Fatalf("RW l=2 m=5: %+v", prog)
	}
}

func TestLowerBoundGridBoundary(t *testing.T) {
	entries, err := LowerBoundGrid(RMW, 3, 1, 15, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		wantLivelock := !e.InM
		gotLivelock := e.Verdict.Outcome == Livelock
		if wantLivelock != gotLivelock {
			t.Errorf("m=%d: InM=%v but outcome=%v", e.M, e.InM, e.Verdict.Outcome)
		}
	}
}

func TestStringers(t *testing.T) {
	for _, a := range []Algorithm{RW, RMW, Greedy, Algorithm(9)} {
		if a.String() == "" {
			t.Error("empty algorithm name")
		}
	}
	for _, o := range []LBOutcome{Livelock, SimultaneousEntry, Entry, Undecided, LBOutcome(9)} {
		if o.String() == "" {
			t.Error("empty outcome name")
		}
	}
}
