// Package sim is the research-facing public API: deterministic simulated
// executions, exhaustive model checking, and the Theorem 5 lower-bound
// constructions, all replayable from seeds.
//
// Three entry points:
//
//   - Run executes a configured schedule (round-robin, seeded-random, or
//     lock-step) of n processes over m simulated anonymous registers and
//     reports safety violations, completion, livelock-cycle detection, and
//     per-process statistics.
//   - Check enumerates every reachable state of a small configuration and
//     verifies mutual exclusion plus deadlock-freedom exhaustively.
//   - LowerBound / LowerBoundGrid run the paper's Theorem 5 ring
//     construction and report which horn of its dichotomy occurred.
package sim

import (
	"fmt"

	"anonmutex/internal/core"
	"anonmutex/internal/explore"
	"anonmutex/internal/id"
	"anonmutex/internal/lowerbound"
	"anonmutex/internal/perm"
	"anonmutex/internal/scenario"
	"anonmutex/internal/sched"
	"anonmutex/internal/strawman"
	"anonmutex/internal/workload"
)

// Algorithm selects a protocol.
type Algorithm uint8

const (
	// RW is the paper's Algorithm 1 (anonymous read/write registers).
	RW Algorithm = iota + 1
	// RMW is the paper's Algorithm 2 (anonymous read/modify/write
	// registers).
	RMW
	// Greedy is a deliberately broken strawman protocol that enters on a
	// tie; it exists to demonstrate mutual-exclusion violations to the
	// checkers and the Theorem 5 simultaneous-entry horn.
	Greedy
)

// String returns the algorithm name.
func (a Algorithm) String() string {
	switch a {
	case RW:
		return "rw"
	case RMW:
		return "rmw"
	case Greedy:
		return "greedy"
	default:
		return fmt.Sprintf("Algorithm(%d)", uint8(a))
	}
}

// Schedule selects the scheduling adversary for Run.
type Schedule uint8

const (
	// RoundRobin cycles through processes in index order (fair).
	RoundRobin Schedule = iota + 1
	// RandomSchedule picks a uniformly random enabled process each step
	// (fair with probability 1), seeded by Config.Seed.
	RandomSchedule
	// LockStepSchedule runs processes in strict cyclic order — the
	// Theorem 5 adversary.
	LockStepSchedule
)

// Permutations selects the anonymity adversary.
type Permutations uint8

const (
	// RandomPerms assigns independent random permutations (seeded).
	RandomPerms Permutations = iota + 1
	// IdentityPerms assigns everyone the identity (non-anonymous memory).
	IdentityPerms
	// RotationPerms assigns process i the rotation by i·RotationStep.
	RotationPerms
)

// Config describes a simulated execution.
type Config struct {
	// Algorithm and system size.
	Algorithm Algorithm
	N, M      int
	// Unchecked skips the m ∈ M(n) validation, allowing the illegal sizes
	// the lower-bound experiments need.
	Unchecked bool
	// Sessions per process (default 1) and critical-section ticks
	// (default 0).
	Sessions, CSTicks int
	// CSTicksFor, when non-nil, draws each critical section's ticks per
	// (process, 0-based session) instead of the constant CSTicks — the
	// hook the scenario bridge uses to drive the scheduler from the
	// unified workload model's session plans. Must be deterministic.
	CSTicksFor func(proc, session int) int
	// Schedule (default RoundRobin) and its seed.
	Schedule Schedule
	Seed     uint64
	// Perms (default IdentityPerms), with PermSeed for RandomPerms and
	// RotationStep for RotationPerms.
	Perms        Permutations
	PermSeed     uint64
	RotationStep int
	// HonestSnapshots expands Algorithm 1 snapshots into individually
	// scheduled double-scan reads.
	HonestSnapshots bool
	// DetectCycles stops with a livelock verdict when the global state
	// repeats (requires a deterministic schedule and atomic snapshots).
	DetectCycles bool
	// MaxSteps bounds the run (default 1_000_000). TraceCap retains that
	// many trace events (0: none).
	MaxSteps, TraceCap int
}

// ProcStats mirrors one process's statistics.
type ProcStats struct {
	Sessions     int
	Entries      int
	MaxWaitSteps int
	MeanWait     float64
	Bypasses     int
	OwnedAtEntry int
	LockSteps    int
}

// Result reports a simulated execution.
type Result struct {
	Steps         int
	Completed     bool
	CycleDetected bool
	CycleStart    int
	Entries       int
	// MEViolations counts mutual-exclusion violations (always 0 for the
	// paper's algorithms, on every schedule).
	MEViolations int
	PerProc      []ProcStats
	MemWrites    uint64
	// TraceLines renders retained trace events, one per line.
	TraceLines []string
}

// Run executes the configured simulation.
func Run(cfg Config) (*Result, error) {
	factory, err := factoryFor(cfg.Algorithm, cfg.N, cfg.M, cfg.Unchecked)
	if err != nil {
		return nil, err
	}
	adversary, err := adversaryFor(cfg.Perms, cfg.PermSeed, cfg.RotationStep)
	if err != nil {
		return nil, err
	}
	var policy sched.Policy
	switch cfg.Schedule {
	case RoundRobin, 0:
		policy = &sched.RoundRobin{}
	case RandomSchedule:
		policy = sched.NewRandom(cfg.Seed)
	case LockStepSchedule:
		policy = sched.NewLockStep(cfg.N)
	default:
		return nil, fmt.Errorf("sim: unknown schedule %d", cfg.Schedule)
	}
	res, err := sched.Run(sched.Config{
		N: cfg.N, M: cfg.M,
		NewMachine:      factory,
		Adversary:       adversary,
		Policy:          policy,
		Sessions:        cfg.Sessions,
		CSTicks:         cfg.CSTicks,
		CSTicksFor:      cfg.CSTicksFor,
		MaxSteps:        cfg.MaxSteps,
		HonestSnapshots: cfg.HonestSnapshots,
		DetectCycles:    cfg.DetectCycles,
		TraceCap:        cfg.TraceCap,
	})
	if err != nil {
		return nil, err
	}
	out := &Result{
		Steps:         res.Steps,
		Completed:     res.Completed,
		CycleDetected: res.CycleDetected,
		CycleStart:    res.CycleStart,
		Entries:       res.Entries,
		MEViolations:  len(res.Violations),
		MemWrites:     res.MemWrites,
	}
	for _, ps := range res.PerProc {
		out.PerProc = append(out.PerProc, ProcStats{
			Sessions:     ps.Sessions,
			Entries:      ps.Entries,
			MaxWaitSteps: ps.MaxWaitSteps,
			MeanWait:     ps.MeanWait,
			Bypasses:     ps.Bypasses,
			OwnedAtEntry: ps.OwnedAtEntry,
			LockSteps:    ps.LockSteps,
		})
	}
	if res.Trace != nil {
		for _, e := range res.Trace.Events {
			out.TraceLines = append(out.TraceLines, e.String())
		}
	}
	return out, nil
}

// CheckResult reports an exhaustive exploration.
type CheckResult struct {
	States       int
	Transitions  int
	Complete     bool
	MEViolations int
	MEWitness    string
	Traps        int
	TrapWitness  string
	Entries      int
}

// OK reports that the explored space is complete and both properties
// hold.
func (r *CheckResult) OK() bool {
	return r.Complete && r.MEViolations == 0 && r.Traps == 0
}

// Check exhaustively verifies mutual exclusion and deadlock-freedom for a
// small configuration under every interleaving.
func Check(cfg Config) (*CheckResult, error) {
	factory, err := factoryFor(cfg.Algorithm, cfg.N, cfg.M, cfg.Unchecked)
	if err != nil {
		return nil, err
	}
	adversary, err := adversaryFor(cfg.Perms, cfg.PermSeed, cfg.RotationStep)
	if err != nil {
		return nil, err
	}
	res, err := explore.Explore(explore.Config{
		N: cfg.N, M: cfg.M,
		Factory:   factory,
		Adversary: adversary,
		Sessions:  cfg.Sessions,
		MaxStates: cfg.MaxSteps, // reuse the bound knob
	})
	if err != nil {
		return nil, err
	}
	return &CheckResult{
		States:       res.States,
		Transitions:  res.Transitions,
		Complete:     res.Complete,
		MEViolations: res.MEViolations,
		MEWitness:    res.MEWitness,
		Traps:        res.Traps,
		TrapWitness:  res.TrapWitness,
		Entries:      res.Entries,
	}, nil
}

// LBOutcome mirrors the lower-bound dichotomy horn.
type LBOutcome uint8

const (
	// Livelock: the state repeated with no entries (deadlock-freedom
	// horn).
	Livelock LBOutcome = iota + 1
	// SimultaneousEntry: all ℓ processes entered together (mutual-
	// exclusion horn; the paper's safe algorithms never take it).
	SimultaneousEntry
	// Entry: symmetry broke and some processes entered — the expected
	// outcome when ℓ ∤ m.
	Entry
	// Undecided: the round bound was hit first.
	Undecided
)

// String returns the outcome name.
func (o LBOutcome) String() string {
	switch o {
	case Livelock:
		return "livelock"
	case SimultaneousEntry:
		return "simultaneous-entry"
	case Entry:
		return "entry"
	case Undecided:
		return "undecided"
	default:
		return fmt.Sprintf("LBOutcome(%d)", uint8(o))
	}
}

// LBVerdict reports one run of the Theorem 5 construction.
type LBVerdict struct {
	L, M         int
	Step         int
	Applicable   bool // ℓ | m: the construction's precondition
	Outcome      LBOutcome
	Rounds       int
	Entrants     int
	SymmetryHeld bool
}

// LowerBound runs the Theorem 5 ring construction: ℓ processes on m
// registers with rotation permutations, in lock step, bounded by
// maxRounds (0: default).
func LowerBound(alg Algorithm, l, m, maxRounds int) (LBVerdict, error) {
	la, err := lbAlg(alg)
	if err != nil {
		return LBVerdict{}, err
	}
	v, err := lowerbound.Run(la, l, m, maxRounds)
	if err != nil {
		return LBVerdict{}, err
	}
	return lbVerdict(v), nil
}

// LBGridEntry is one grid cell of LowerBoundGrid.
type LBGridEntry struct {
	M       int
	InM     bool
	Witness int
	Verdict LBVerdict
}

// LowerBoundGrid runs the construction for every m in [mLo, mHi] against
// up to n processes, choosing ℓ as the smallest prime witness when
// m ∉ M(n) (so that ℓ | m) and ℓ = n otherwise.
func LowerBoundGrid(alg Algorithm, n, mLo, mHi, maxRounds int) ([]LBGridEntry, error) {
	la, err := lbAlg(alg)
	if err != nil {
		return nil, err
	}
	entries, err := lowerbound.Grid(la, n, mLo, mHi, maxRounds)
	if err != nil {
		return nil, err
	}
	out := make([]LBGridEntry, len(entries))
	for i, e := range entries {
		out[i] = LBGridEntry{M: e.M, InM: e.InM, Witness: e.Witness, Verdict: lbVerdict(e.Verdict)}
	}
	return out, nil
}

func lbAlg(alg Algorithm) (lowerbound.Algorithm, error) {
	switch alg {
	case RW:
		return lowerbound.AlgRW, nil
	case RMW:
		return lowerbound.AlgRMW, nil
	case Greedy:
		return lowerbound.AlgGreedy, nil
	default:
		return 0, fmt.Errorf("sim: unknown algorithm %v", alg)
	}
}

func lbVerdict(v lowerbound.Verdict) LBVerdict {
	out := LBVerdict{
		L: v.L, M: v.M, Step: v.Step,
		Applicable:   v.Applicable,
		Rounds:       v.Rounds,
		Entrants:     v.Entrants,
		SymmetryHeld: v.SymmetryHeld,
	}
	switch v.Outcome {
	case lowerbound.OutcomeLivelock:
		out.Outcome = Livelock
	case lowerbound.OutcomeSimultaneousEntry:
		out.Outcome = SimultaneousEntry
	case lowerbound.OutcomeEntry:
		out.Outcome = Entry
	default:
		out.Outcome = Undecided
	}
	return out
}

func factoryFor(alg Algorithm, n, m int, unchecked bool) (sched.MachineFactory, error) {
	switch alg {
	case RW:
		if unchecked {
			return sched.Alg1UncheckedFactory(m, core.Alg1Config{}), nil
		}
		return sched.Alg1Factory(n, m, core.Alg1Config{}), nil
	case RMW:
		if unchecked {
			return sched.Alg2UncheckedFactory(m, core.Alg2Config{}), nil
		}
		return sched.Alg2Factory(n, m, core.Alg2Config{}), nil
	case Greedy:
		return func(_ int, me id.ID) (core.Machine, error) {
			return strawman.New(me, m), nil
		}, nil
	default:
		return nil, fmt.Errorf("sim: unknown algorithm %v", alg)
	}
}

// Scenarios returns the names of every registered scenario, sorted. The
// built-in library covers the configurations the repository's experiments
// refer to by name; internal/scenario documents the JSON schema.
func Scenarios() []string { return scenario.Names() }

// ScenarioJSON returns the canonical JSON encoding of a registered
// scenario — a starting point for writing scenario files.
func ScenarioJSON(name string) ([]byte, error) {
	spec, err := scenario.Lookup(name)
	if err != nil {
		return nil, err
	}
	return spec.JSON()
}

// RunScenario runs a registered scenario on the simulated substrate.
func RunScenario(name string) (*Result, error) {
	spec, err := scenario.Lookup(name)
	if err != nil {
		return nil, err
	}
	return RunSpec(spec)
}

// RunScenarioJSON parses a scenario spec from JSON (the schema of
// internal/scenario.Spec) and runs it on the simulated substrate.
func RunScenarioJSON(data []byte) (*Result, error) {
	spec, err := scenario.ParseJSON(data)
	if err != nil {
		return nil, err
	}
	return RunSpec(spec)
}

// RunSpec runs a declarative scenario on the simulated substrate. It is
// the bridge between the scenario vocabulary and this package's Config;
// external callers normally use RunScenario or RunScenarioJSON.
func RunSpec(spec scenario.Spec) (*Result, error) {
	cfg, err := configFromSpec(spec)
	if err != nil {
		return nil, err
	}
	return Run(cfg)
}

// configFromSpec translates a normalized scenario into a Config.
func configFromSpec(spec scenario.Spec) (Config, error) {
	spec, err := spec.Normalize()
	if err != nil {
		return Config{}, err
	}
	cfg := Config{
		N: spec.N, M: spec.M,
		Unchecked:       spec.Unchecked || spec.Algorithm == scenario.AlgGreedy,
		Sessions:        spec.Sessions,
		CSTicks:         spec.CSTicks,
		Seed:            spec.Seed,
		PermSeed:        spec.PermSeed,
		RotationStep:    spec.RotationStep,
		HonestSnapshots: spec.HonestSnapshots,
		DetectCycles:    spec.DetectCycles,
		MaxSteps:        spec.MaxSteps,
		TraceCap:        spec.TraceCap,
	}
	switch spec.Algorithm {
	case scenario.AlgRW:
		cfg.Algorithm = RW
	case scenario.AlgRMW:
		cfg.Algorithm = RMW
	case scenario.AlgGreedy:
		cfg.Algorithm = Greedy
	default:
		return Config{}, fmt.Errorf("sim: unknown scenario algorithm %q", spec.Algorithm)
	}
	switch spec.Schedule {
	case scenario.SchedRoundRobin:
		cfg.Schedule = RoundRobin
	case scenario.SchedRandom:
		cfg.Schedule = RandomSchedule
	case scenario.SchedLockStep:
		cfg.Schedule = LockStepSchedule
	default:
		return Config{}, fmt.Errorf("sim: unknown scenario schedule %q", spec.Schedule)
	}
	switch spec.Perms {
	case scenario.PermsIdentity:
		cfg.Perms = IdentityPerms
	case scenario.PermsRandom:
		cfg.Perms = RandomPerms
	case scenario.PermsRotation:
		cfg.Perms = RotationPerms
	default:
		return Config{}, fmt.Errorf("sim: unknown scenario perms %q", spec.Perms)
	}
	// The simulated substrate consumes the scenario's traffic model too:
	// with cs_ticks > 0 and a non-uniform profile, per-session CS ticks
	// come from the same session plan the real runner spins through,
	// scaled so the profile's base equals cs_ticks. (A uniform profile
	// is the constant-CSTicks case and needs no plan.)
	if spec.CSTicks > 0 && spec.Traffic.Profile != scenario.WorkloadUniform {
		tspec := spec.Traffic
		tspec.BaseCS = spec.CSTicks
		plan, err := workload.SpecPlan(tspec, spec.N, spec.Sessions)
		if err != nil {
			return Config{}, err
		}
		cfg.CSTicksFor = func(proc, session int) int {
			if session >= len(plan[proc]) {
				session = len(plan[proc]) - 1
			}
			return plan[proc][session].CSWork
		}
	}
	return cfg, nil
}

func adversaryFor(p Permutations, seed uint64, step int) (perm.Adversary, error) {
	switch p {
	case IdentityPerms, 0:
		return perm.IdentityAdversary{}, nil
	case RandomPerms:
		return perm.RandomAdversary{Seed: seed}, nil
	case RotationPerms:
		return perm.RotationAdversary{Step: step}, nil
	default:
		return nil, fmt.Errorf("sim: unknown permutation mode %d", p)
	}
}
