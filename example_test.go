package anonmutex_test

import (
	"fmt"
	"sync"

	"anonmutex"
	"anonmutex/mnum"
	"anonmutex/sim"
)

// The basic usage pattern: one lock, one process handle per goroutine.
func ExampleNewRWLock() {
	lock, err := anonmutex.NewRWLock(2) // m = 3 anonymous RW registers
	if err != nil {
		fmt.Println(err)
		return
	}
	counter := 0
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		p, err := lock.NewProcess()
		if err != nil {
			fmt.Println(err)
			return
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			for k := 0; k < 100; k++ {
				_ = p.Lock()
				counter++
				_ = p.Unlock()
			}
		}()
	}
	wg.Wait()
	fmt.Println("counter:", counter)
	// Output: counter: 200
}

// The RMW lock works even on a single anonymous register (1 ∈ M(n)).
func ExampleNewRMWLock() {
	lock, err := anonmutex.NewRMWLock(3, anonmutex.WithRegisters(1))
	if err != nil {
		fmt.Println(err)
		return
	}
	p, _ := lock.NewProcess()
	_ = p.Lock()
	fmt.Println("owned at entry:", p.OwnedAtEntry(), "of", lock.M())
	_ = p.Unlock()
	// Output: owned at entry: 1 of 1
}

// M(n) membership explains which memory sizes are solvable.
func ExampleNewRWLock_validation() {
	_, err := anonmutex.NewRWLock(2, anonmutex.WithRegisters(4))
	fmt.Println("m=4 legal:", err == nil)
	fmt.Println("m=5 in M(2):", mnum.InM(2, 5))
	fmt.Println("smallest legal m for n=6:", mnum.MinRW(6))
	// Output:
	// m=4 legal: false
	// m=5 in M(2): true
	// smallest legal m for n=6: 7
}

// Exhaustive verification of a small configuration through the public
// simulation API.
func ExampleCheck() {
	res, err := sim.Check(sim.Config{Algorithm: sim.RMW, N: 2, M: 3})
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Println("complete:", res.Complete)
	fmt.Println("mutual exclusion violations:", res.MEViolations)
	fmt.Println("progress traps:", res.Traps)
	// Output:
	// complete: true
	// mutual exclusion violations: 0
	// progress traps: 0
}

// The Theorem 5 construction, one call.
func ExampleLowerBound() {
	v, err := sim.LowerBound(sim.RMW, 2, 4, 0) // ℓ=2 divides m=4
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Println("outcome:", v.Outcome)
	fmt.Println("symmetry held:", v.SymmetryHeld)
	// Output:
	// outcome: livelock
	// symmetry held: true
}
