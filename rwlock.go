package anonmutex

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"anonmutex/internal/amem"
	"anonmutex/internal/core"
	"anonmutex/internal/engine"
	"anonmutex/internal/id"
	"anonmutex/internal/mset"
)

// RWLock is the paper's Algorithm 1: an n-process symmetric deadlock-free
// mutual exclusion lock over m anonymous read/write registers, for any
// m ∈ M(n) with m ≥ n. Entering the critical section requires a snapshot
// in which the process owns all m registers.
//
// Create per-goroutine handles with NewProcess. The lock itself is safe
// for concurrent use; each handle belongs to one goroutine at a time.
type RWLock struct {
	n, m int
	cfg  config
	mem  *amem.Memory
	gen  *id.Generator

	mu     sync.Mutex
	issued int
	free   []*RWProcess // closed handles awaiting re-lease
}

// NewRWLock creates an anonymous read/write-register lock for n ≥ 2
// processes. Without WithRegisters the memory size is the optimal
// MinRegistersRW(n); an explicit size must satisfy the paper's tight
// characterization m ∈ M(n), m ≥ n.
func NewRWLock(n int, opts ...Option) (*RWLock, error) {
	cfg, err := buildConfig(opts)
	if err != nil {
		return nil, err
	}
	if n < 2 {
		return nil, fmt.Errorf("anonmutex: RWLock needs n >= 2 processes, got %d", n)
	}
	m := cfg.m
	if m == 0 {
		m = mset.MinRW(n)
	}
	if err := mset.ValidateRW(n, m); err != nil {
		return nil, fmt.Errorf("anonmutex: %w", err)
	}
	return &RWLock{n: n, m: m, cfg: cfg, mem: amem.New(m), gen: id.NewGenerator()}, nil
}

// N returns the configured number of processes.
func (l *RWLock) N() int { return l.n }

// M returns the anonymous memory size.
func (l *RWLock) M() int { return l.m }

// NewProcess allocates one of the lock's n process handles: a fresh slot
// while any remain, otherwise a handle recycled by Close. When all n
// slots are live it returns an error; Close a handle to free one.
func (l *RWLock) NewProcess() (*RWProcess, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if k := len(l.free); k > 0 {
		p := l.free[k-1]
		l.free = l.free[:k-1]
		p.closed = false
		return p, nil
	}
	if l.issued >= l.n {
		return nil, fmt.Errorf("anonmutex: RWLock configured for %d processes and none released", l.n)
	}
	i := l.issued
	me, err := l.gen.New()
	if err != nil {
		return nil, fmt.Errorf("anonmutex: issuing identity: %w", err)
	}
	mcfg := core.Alg1Config{Choice: core.ChooseRandomBottom, Rand: l.cfg.rng(i)}
	if l.cfg.firstBottom {
		mcfg = core.Alg1Config{Choice: core.ChooseFirstBottom}
	}
	machine, err := core.NewAlg1(me, l.n, l.m, mcfg)
	if err != nil {
		return nil, fmt.Errorf("anonmutex: %w", err)
	}
	view, err := l.mem.NewView(me, l.cfg.adversary().Assign(i, l.m))
	if err != nil {
		return nil, fmt.Errorf("anonmutex: %w", err)
	}
	l.issued++
	return &RWProcess{
		lock:    l,
		machine: machine,
		view:    view,
		driver:  engine.NewDriver(machine, engine.Hardware(view)),
	}, nil
}

// RWProcess is one process's handle on an RWLock. Not safe for concurrent
// use: a handle belongs to one goroutine at a time.
type RWProcess struct {
	lock    *RWLock
	machine *core.Alg1Machine
	view    *amem.View
	driver  *engine.Driver
	closed  bool
}

// Lock acquires the critical section. It returns an error only on
// life-cycle misuse (locking a closed handle or one that already holds
// the lock).
func (p *RWProcess) Lock() error {
	if p.closed {
		return fmt.Errorf("anonmutex: Lock on a closed handle")
	}
	if err := p.machine.StartLock(); err != nil {
		return fmt.Errorf("anonmutex: %w", err)
	}
	if err := p.driver.Drive(); err != nil {
		return fmt.Errorf("anonmutex: %w", err)
	}
	return nil
}

// LockCtx acquires the critical section, abandoning the attempt when ctx
// is cancelled or its deadline passes. An abandoned attempt withdraws
// cleanly: the process erases its identity from every anonymous register
// it touched (the abortable-mutex back-out, a bounded wait-free sweep),
// so the remaining competitors proceed as if this process had never
// entered the entry section. Cancellation is reported as ctx's error
// (test with errors.Is against context.Canceled or DeadlineExceeded); if
// the lock is acquired before the cancellation is observed, LockCtx
// returns nil and the caller holds the lock.
func (p *RWProcess) LockCtx(ctx context.Context) error {
	if p.closed {
		return fmt.Errorf("anonmutex: LockCtx on a closed handle")
	}
	if err := ctx.Err(); err != nil {
		return fmt.Errorf("anonmutex: lock aborted: %w", err)
	}
	if err := p.machine.StartLock(); err != nil {
		return fmt.Errorf("anonmutex: %w", err)
	}
	if err := p.driver.DriveContext(ctx); err != nil {
		return fmt.Errorf("anonmutex: lock aborted: %w", err)
	}
	return nil
}

// TryLock attempts the critical section without waiting: it runs at
// most 2m+2 shared-memory operations (snapshots counting as one) —
// enough for any uncontended acquisition, which takes 2m+1 — and, if
// the lock has not been entered by then, withdraws via the bounded
// read-and-erase sweep and reports false. The whole call executes a
// hard-bounded number of operations and never sleeps, unlike
// TryLockFor's wall-clock bound. Errors are reserved for life-cycle
// misuse.
func (p *RWProcess) TryLock() (bool, error) {
	if p.closed {
		return false, fmt.Errorf("anonmutex: TryLock on a closed handle")
	}
	if err := p.machine.StartLock(); err != nil {
		return false, fmt.Errorf("anonmutex: %w", err)
	}
	ok, err := p.driver.TryDriveBounded(2*p.lock.m + 2)
	if err != nil {
		return false, fmt.Errorf("anonmutex: %w", err)
	}
	return ok, nil
}

// TryLockFor acquires the critical section if it can do so within d,
// reporting whether the lock is now held. Expiry is not an error: the
// attempt withdraws cleanly (see LockCtx) and TryLockFor returns
// (false, nil). Errors are reserved for life-cycle misuse.
func (p *RWProcess) TryLockFor(d time.Duration) (bool, error) {
	ctx, cancel := context.WithTimeout(context.Background(), d)
	defer cancel()
	err := p.LockCtx(ctx)
	switch {
	case err == nil:
		return true, nil
	case errors.Is(err, context.DeadlineExceeded):
		return false, nil
	default:
		return false, err
	}
}

// Aborts reports how many lock attempts this handle has withdrawn
// (LockCtx cancellations and TryLockFor expiries).
func (p *RWProcess) Aborts() uint64 { return p.driver.Aborts() }

// Unlock releases the critical section. It returns an error only on
// life-cycle misuse (unlocking a closed handle or one that does not hold
// the lock).
func (p *RWProcess) Unlock() error {
	if p.closed {
		return fmt.Errorf("anonmutex: Unlock on a closed handle")
	}
	if err := p.machine.StartUnlock(); err != nil {
		return fmt.Errorf("anonmutex: %w", err)
	}
	if err := p.driver.Drive(); err != nil {
		return fmt.Errorf("anonmutex: %w", err)
	}
	return nil
}

// Close releases the handle's slot back to the lock so a future
// NewProcess call can re-lease it — the lifecycle primitive lease pools
// build on. Only an idle handle (not holding the lock) can be closed.
//
// The slot keeps its identity, permutation, and write-stamp sequence
// across leases: an idle Algorithm 1 process owns no registers, and the
// preserved sequence number keeps every future write stamp fresh, so a
// recycled handle is indistinguishable from one that simply changed
// goroutines. Using a handle after Close is a bug; the handle's methods
// fail until NewProcess hands it out again.
func (p *RWProcess) Close() error {
	if p.closed {
		return fmt.Errorf("anonmutex: Close on a closed handle")
	}
	if p.machine.Status() != core.StatusIdle {
		return fmt.Errorf("anonmutex: Close on a handle that holds the lock")
	}
	l := p.lock
	l.mu.Lock()
	defer l.mu.Unlock()
	p.closed = true
	l.free = append(l.free, p)
	return nil
}

// LockSteps reports the number of shared-memory operations (snapshots
// counting as one) performed by the most recent Lock call.
func (p *RWProcess) LockSteps() int { return p.machine.LockSteps() }

// OwnedAtEntry reports how many registers held this process's identity
// when it last entered the critical section — always M() for Algorithm 1,
// the paper's RW-model entry cost.
func (p *RWProcess) OwnedAtEntry() int { return p.machine.OwnedAtEntry() }

// SnapshotStats reports how many snapshot operations this process has
// performed and the total number of double-scan collect passes they
// needed (collects/calls − 1 is the retry rate caused by concurrent
// writers).
func (p *RWProcess) SnapshotStats() (calls, collects uint64) {
	return p.view.SnapshotStats()
}
