package anonmutex

import (
	"sync"
	"testing"
)

func TestNewRWLockDefaults(t *testing.T) {
	cases := []struct{ n, wantM int }{
		{2, 3}, {3, 5}, {4, 5}, {6, 7}, {10, 11},
	}
	for _, tc := range cases {
		l, err := NewRWLock(tc.n)
		if err != nil {
			t.Fatalf("NewRWLock(%d): %v", tc.n, err)
		}
		if l.M() != tc.wantM {
			t.Errorf("NewRWLock(%d).M() = %d, want %d", tc.n, l.M(), tc.wantM)
		}
		if l.N() != tc.n {
			t.Errorf("N() = %d", l.N())
		}
	}
}

func TestNewRWLockValidation(t *testing.T) {
	if _, err := NewRWLock(1); err == nil {
		t.Error("n=1 accepted")
	}
	if _, err := NewRWLock(2, WithRegisters(4)); err == nil {
		t.Error("m=4 ∉ M(2) accepted")
	}
	if _, err := NewRWLock(4, WithRegisters(3)); err == nil {
		t.Error("m < n accepted")
	}
	if _, err := NewRWLock(2, WithRegisters(0)); err == nil {
		t.Error("m=0 accepted")
	}
	if _, err := NewRWLock(2, WithPermutations(PermutationMode(99), 0)); err == nil {
		t.Error("bad permutation mode accepted")
	}
	if _, err := NewRWLock(2, WithRegisters(9)); err != nil {
		t.Errorf("m=9 ∈ M(2) rejected: %v", err)
	}
}

func TestNewRMWLockValidation(t *testing.T) {
	if _, err := NewRMWLock(1); err == nil {
		t.Error("n=1 accepted")
	}
	if _, err := NewRMWLock(2, WithRegisters(2)); err == nil {
		t.Error("m=2 ∉ M(2) accepted")
	}
	l, err := NewRMWLock(3, WithRegisters(1))
	if err != nil {
		t.Fatalf("m=1 rejected: %v", err)
	}
	if l.M() != 1 {
		t.Errorf("M() = %d", l.M())
	}
	if l2, err := NewRMWLock(4); err != nil || l2.M() != 5 {
		t.Errorf("default RMW size for n=4: %d (err %v), want 5", l2.M(), err)
	}
}

func TestProcessLimit(t *testing.T) {
	l, err := NewRWLock(2)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		if _, err := l.NewProcess(); err != nil {
			t.Fatalf("process %d rejected: %v", i, err)
		}
	}
	if _, err := l.NewProcess(); err == nil {
		t.Error("third process accepted on a 2-process lock")
	}
}

func TestLifecycleMisuse(t *testing.T) {
	l, _ := NewRWLock(2)
	p, err := l.NewProcess()
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Unlock(); err == nil {
		t.Error("Unlock before Lock succeeded")
	}
	if err := p.Lock(); err != nil {
		t.Fatal(err)
	}
	if err := p.Lock(); err == nil {
		t.Error("recursive Lock succeeded")
	}
	if err := p.Unlock(); err != nil {
		t.Fatal(err)
	}
	if err := p.Unlock(); err == nil {
		t.Error("double Unlock succeeded")
	}
}

// tortureTest exercises a lock with n goroutines incrementing a counter.
type lockProc interface {
	Lock() error
	Unlock() error
}

func torture(t *testing.T, procs []lockProc, iters int) {
	t.Helper()
	counter := 0
	var wg sync.WaitGroup
	for _, p := range procs {
		p := p
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				if err := p.Lock(); err != nil {
					t.Error(err)
					return
				}
				counter++
				if err := p.Unlock(); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()
	if counter != len(procs)*iters {
		t.Fatalf("counter = %d, want %d — mutual exclusion violated", counter, len(procs)*iters)
	}
}

func TestRWLockMutualExclusion(t *testing.T) {
	const n, iters = 3, 150
	l, err := NewRWLock(n)
	if err != nil {
		t.Fatal(err)
	}
	procs := make([]lockProc, n)
	for i := range procs {
		p, err := l.NewProcess()
		if err != nil {
			t.Fatal(err)
		}
		procs[i] = p
	}
	torture(t, procs, iters)
}

func TestRMWLockMutualExclusion(t *testing.T) {
	const n, iters = 4, 400
	l, err := NewRMWLock(n)
	if err != nil {
		t.Fatal(err)
	}
	procs := make([]lockProc, n)
	for i := range procs {
		p, err := l.NewProcess()
		if err != nil {
			t.Fatal(err)
		}
		procs[i] = p
	}
	torture(t, procs, iters)
}

func TestRMWLockSingleRegister(t *testing.T) {
	l, err := NewRMWLock(3, WithRegisters(1))
	if err != nil {
		t.Fatal(err)
	}
	procs := make([]lockProc, 3)
	for i := range procs {
		p, err := l.NewProcess()
		if err != nil {
			t.Fatal(err)
		}
		procs[i] = p
	}
	torture(t, procs, 500)
}

func TestPermutationModes(t *testing.T) {
	for _, mode := range []PermutationMode{PermRandom, PermIdentity, PermRotation} {
		l, err := NewRWLock(2, WithPermutations(mode, 1), WithSeed(7))
		if err != nil {
			t.Fatalf("%v: %v", mode, err)
		}
		procs := make([]lockProc, 2)
		for i := range procs {
			p, err := l.NewProcess()
			if err != nil {
				t.Fatal(err)
			}
			procs[i] = p
		}
		torture(t, procs, 100)
	}
}

func TestDeterministicClaims(t *testing.T) {
	l, err := NewRWLock(2, WithDeterministicClaims())
	if err != nil {
		t.Fatal(err)
	}
	p, err := l.NewProcess()
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Lock(); err != nil {
		t.Fatal(err)
	}
	if err := p.Unlock(); err != nil {
		t.Fatal(err)
	}
}

func TestRWEntryCostIsAllRegisters(t *testing.T) {
	l, _ := NewRWLock(2, WithRegisters(5))
	p, err := l.NewProcess()
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Lock(); err != nil {
		t.Fatal(err)
	}
	if got := p.OwnedAtEntry(); got != 5 {
		t.Errorf("OwnedAtEntry = %d, want 5 (all registers)", got)
	}
	if p.LockSteps() == 0 {
		t.Error("LockSteps = 0")
	}
	calls, collects := p.SnapshotStats()
	if calls == 0 || collects < 2*calls {
		t.Errorf("snapshot stats calls=%d collects=%d", calls, collects)
	}
	if err := p.Unlock(); err != nil {
		t.Fatal(err)
	}
}

func TestRMWEntryCostIsMajority(t *testing.T) {
	l, _ := NewRMWLock(2, WithRegisters(5))
	p, err := l.NewProcess()
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Lock(); err != nil {
		t.Fatal(err)
	}
	got := p.OwnedAtEntry()
	if 2*got <= 5 {
		t.Errorf("OwnedAtEntry = %d, not a majority of 5", got)
	}
	if err := p.Unlock(); err != nil {
		t.Fatal(err)
	}
}

func TestSeedsReproducePermutations(t *testing.T) {
	// Two locks with the same seed assign the same permutations; correct
	// behavior regardless, but the handles' step counts when run solo and
	// deterministically must coincide.
	mk := func(seed uint64) int {
		l, err := NewRWLock(2, WithSeed(seed), WithDeterministicClaims())
		if err != nil {
			t.Fatal(err)
		}
		p, err := l.NewProcess()
		if err != nil {
			t.Fatal(err)
		}
		if err := p.Lock(); err != nil {
			t.Fatal(err)
		}
		defer func() {
			if err := p.Unlock(); err != nil {
				t.Fatal(err)
			}
		}()
		return p.LockSteps()
	}
	if mk(5) != mk(5) {
		t.Error("same seed produced different solo executions")
	}
}

func TestPermutationModeStrings(t *testing.T) {
	for _, m := range []PermutationMode{PermRandom, PermIdentity, PermRotation, PermutationMode(42)} {
		if m.String() == "" {
			t.Errorf("empty name for mode %d", m)
		}
	}
}
